package topology

import (
	"errors"
	"fmt"

	"hetmem/internal/bitmap"
)

// Topology is a finalized object tree with logical indexes assigned and
// cpusets/nodesets computed. Build one with Build; after that the tree
// must be treated as immutable.
type Topology struct {
	root   *Object
	byType [numTypes][]*Object
	byOS   [numTypes]map[int]*Object
}

// Build finalizes a tree rooted at root: it computes cpusets and
// nodesets bottom-up, assigns logical indexes in depth-first order per
// type, and validates structural invariants. It returns an error if the
// tree is malformed (wrong root type, duplicate OS indexes, overlapping
// sibling cpusets, PU without its own index, ...).
func Build(root *Object) (*Topology, error) {
	if root == nil {
		return nil, errors.New("topology: nil root")
	}
	if root.Type != Machine {
		return nil, fmt.Errorf("topology: root must be Machine, got %s", root.Type)
	}
	if root.Parent != nil {
		return nil, errors.New("topology: root has a parent")
	}
	t := &Topology{root: root}
	for i := range t.byOS {
		t.byOS[i] = make(map[int]*Object)
	}
	if err := t.computeSets(root); err != nil {
		return nil, err
	}
	t.index(root)
	if err := t.validate(root); err != nil {
		return nil, err
	}
	return t, nil
}

// computeSets fills CPUSet and NodeSet bottom-up. A PU owns its own
// cpuset bit; a NUMANode owns its own nodeset bit; every other object
// is the union of its children. Memory objects inherit the cpuset of
// their CPU parent as their locality.
func (t *Topology) computeSets(o *Object) error {
	o.CPUSet = bitmap.New()
	o.NodeSet = bitmap.New()
	switch o.Type {
	case PU:
		if o.OSIndex < 0 {
			return fmt.Errorf("topology: PU without OS index")
		}
		if len(o.Children) > 0 || len(o.MemChildren) > 0 {
			return errors.New("topology: PU must be a leaf")
		}
		o.CPUSet.Set(o.OSIndex)
	case NUMANode:
		if o.OSIndex < 0 {
			return fmt.Errorf("topology: NUMANode without OS index")
		}
		if len(o.Children) > 0 {
			return errors.New("topology: NUMANode cannot have CPU children")
		}
		o.NodeSet.Set(o.OSIndex)
	}
	for _, c := range o.Children {
		if err := t.computeSets(c); err != nil {
			return err
		}
		o.CPUSet.Or(c.CPUSet)
		o.NodeSet.Or(c.NodeSet)
	}
	for _, m := range o.MemChildren {
		if err := t.computeSets(m); err != nil {
			return err
		}
		o.NodeSet.Or(m.NodeSet)
	}
	// Memory objects are local to the PUs of their CPU parent; that
	// locality is propagated after the parent's cpuset is complete, in
	// propagateLocality.
	return nil
}

// propagateLocality sets the cpuset of memory objects to the cpuset of
// their CPU parent (their locality), recursively.
func propagateLocality(o *Object) {
	for _, m := range o.MemChildren {
		setMemLocality(m, o.CPUSet)
	}
	for _, c := range o.Children {
		propagateLocality(c)
	}
}

func setMemLocality(m *Object, cpuset *bitmap.Bitmap) {
	m.CPUSet = cpuset.Copy()
	for _, mm := range m.MemChildren {
		setMemLocality(mm, cpuset)
	}
}

// index assigns logical indexes in depth-first order and fills lookup
// tables.
func (t *Topology) index(root *Object) {
	propagateLocality(root)
	var next [numTypes]int
	var walk func(o *Object)
	walk = func(o *Object) {
		o.LogicalIndex = next[o.Type]
		next[o.Type]++
		t.byType[o.Type] = append(t.byType[o.Type], o)
		if o.OSIndex >= 0 {
			t.byOS[o.Type][o.OSIndex] = o
		}
		// CPU children first: NUMA nodes attached deeper in the tree
		// (e.g. per-SNC DRAM) get lower logical indexes than nodes
		// attached higher (e.g. per-package NVDIMM), matching the
		// numbering shown in Figure 5 of the paper.
		for _, c := range o.Children {
			walk(c)
		}
		for _, m := range o.MemChildren {
			walk(m)
		}
	}
	walk(root)
}

func (t *Topology) validate(root *Object) error {
	// OS indexes must be unique per type.
	for typ := Type(0); int(typ) < numTypes; typ++ {
		seen := make(map[int]bool)
		for _, o := range t.byType[typ] {
			if o.OSIndex < 0 {
				continue
			}
			if seen[o.OSIndex] {
				return fmt.Errorf("topology: duplicate %s OS index %d", typ, o.OSIndex)
			}
			seen[o.OSIndex] = true
		}
	}
	if len(t.byType[PU]) == 0 {
		return errors.New("topology: no PU")
	}
	if len(t.byType[NUMANode]) == 0 {
		return errors.New("topology: no NUMA node")
	}
	// Sibling CPU children must have disjoint cpusets, each included
	// in the parent's.
	var walk func(o *Object) error
	walk = func(o *Object) error {
		acc := bitmap.New()
		for _, c := range o.Children {
			if !bitmap.IsIncluded(c.CPUSet, o.CPUSet) {
				return fmt.Errorf("topology: %s cpuset not included in parent %s", c, o)
			}
			if bitmap.Intersects(acc, c.CPUSet) {
				return fmt.Errorf("topology: overlapping sibling cpusets under %s", o)
			}
			acc.Or(c.CPUSet)
			if err := walk(c); err != nil {
				return err
			}
		}
		for _, m := range o.MemChildren {
			if err := walk(m); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root)
}

// Root returns the Machine object.
func (t *Topology) Root() *Object { return t.root }

// Objects returns the objects of the given type in logical order. The
// returned slice must not be modified.
func (t *Topology) Objects(typ Type) []*Object { return t.byType[typ] }

// NumObjects returns the number of objects of the given type.
func (t *Topology) NumObjects(typ Type) int { return len(t.byType[typ]) }

// NUMANodes returns all NUMA nodes in logical order.
func (t *Topology) NUMANodes() []*Object { return t.byType[NUMANode] }

// PUs returns all processing units in logical order.
func (t *Topology) PUs() []*Object { return t.byType[PU] }

// ObjectByOS returns the object of the given type with the given OS
// index, or nil.
func (t *Topology) ObjectByOS(typ Type, os int) *Object { return t.byOS[typ][os] }

// ObjectByLogical returns the object of the given type with the given
// logical index, or nil.
func (t *Topology) ObjectByLogical(typ Type, l int) *Object {
	objs := t.byType[typ]
	if l < 0 || l >= len(objs) {
		return nil
	}
	return objs[l]
}

// CompleteCPUSet returns the machine-wide cpuset.
func (t *Topology) CompleteCPUSet() *bitmap.Bitmap { return t.root.CPUSet.Copy() }

// CompleteNodeSet returns the machine-wide nodeset.
func (t *Topology) CompleteNodeSet() *bitmap.Bitmap { return t.root.NodeSet.Copy() }

// LocalNUMANodes returns the NUMA nodes whose locality cpuset
// intersects the given initiator cpuset, in logical order. This mirrors
// hwloc_get_local_numanode_objs: it is the first step of a placement
// decision (NUMA affinity), before ranking the candidates by a
// performance attribute (memory-kind affinity).
//
// Nodes with an empty locality (e.g. network-attached memory local to
// no CPU in particular) are returned only when the initiator is the
// complete machine cpuset, or when includeCPUless is set via
// LocalNUMANodesAll.
func (t *Topology) LocalNUMANodes(initiator *bitmap.Bitmap) []*Object {
	return t.localNUMANodes(initiator, false)
}

// LocalNUMANodesAll is LocalNUMANodes but also includes CPU-less NUMA
// nodes (such as network-attached memory) regardless of the initiator.
func (t *Topology) LocalNUMANodesAll(initiator *bitmap.Bitmap) []*Object {
	return t.localNUMANodes(initiator, true)
}

func (t *Topology) localNUMANodes(initiator *bitmap.Bitmap, includeCPUless bool) []*Object {
	var out []*Object
	for _, n := range t.byType[NUMANode] {
		if n.CPUSet.IsZero() {
			if includeCPUless || bitmap.Equal(initiator, t.root.CPUSet) {
				out = append(out, n)
			}
			continue
		}
		if bitmap.Intersects(n.CPUSet, initiator) {
			out = append(out, n)
		}
	}
	return out
}

// NUMANodeByNodeSetBit returns the NUMA node owning the given nodeset
// bit (OS index), or nil.
func (t *Topology) NUMANodeByNodeSetBit(os int) *Object { return t.byOS[NUMANode][os] }

// CommonAncestor returns the deepest object that is an ancestor of (or
// equal to) both a and b.
func CommonAncestor(a, b *Object) *Object {
	depth := func(o *Object) int {
		d := 0
		for p := o; p.Parent != nil; p = p.Parent {
			d++
		}
		return d
	}
	da, db := depth(a), depth(b)
	for da > db {
		a = a.Parent
		da--
	}
	for db > da {
		b = b.Parent
		db--
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// MemorySideCacheFor returns the memory-side cache in front of the
// given NUMA node, or nil if the node is accessed directly. The cache,
// when present, is the node's direct parent in the memory-children
// chain.
func MemorySideCacheFor(n *Object) *Object {
	if n.Parent != nil && n.Parent.Type == MemCache {
		return n.Parent
	}
	return nil
}

// Summary returns a one-line inventory like `lstopo -s`:
// "2 Package, 40 Core, 40 PU; 4 NUMANode (2 DRAM, 2 NVDIMM)".
func (t *Topology) Summary() string {
	s := fmt.Sprintf("%d %s, %d %s, %d %s; %d %s",
		t.NumObjects(Package), Package, t.NumObjects(Core), Core, t.NumObjects(PU), PU,
		t.NumObjects(NUMANode), NUMANode)
	kinds := map[string]int{}
	var order []string
	for _, n := range t.NUMANodes() {
		k := n.Subtype
		if k == "" {
			k = "DRAM"
		}
		if kinds[k] == 0 {
			order = append(order, k)
		}
		kinds[k]++
	}
	s += " ("
	for i, k := range order {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d %s", kinds[k], k)
	}
	return s + ")"
}
