// Package topology implements an hwloc-style model of the hardware
// resources of a machine: a tree of objects (Machine, Package, Group,
// caches, Core, PU) ordered by physical inclusion, with memory objects
// (NUMA nodes and memory-side caches) attached as *memory children* of
// the CPU object they are local to, as introduced in hwloc 2.0.
//
// The tree is the substrate for the memory-attributes API
// (internal/memattr): NUMA nodes are the *targets* of memory accesses,
// and sets of processors (cpusets) are the *initiators*.
package topology

import (
	"fmt"
	"strings"

	"hetmem/internal/bitmap"
)

// Type enumerates the kinds of objects in a topology, mirroring the
// hwloc object types that matter for memory placement.
type Type int

const (
	// Machine is the root of every topology.
	Machine Type = iota
	// Package is a physical processor package (socket).
	Package
	// Group is an intermediate grouping such as a Sub-NUMA Cluster
	// (SNC) on Intel Xeon, or a quadrant/cluster on Knights Landing.
	Group
	// L3 is a level-3 cache.
	L3
	// L2 is a level-2 cache.
	L2
	// Core is a physical core.
	Core
	// PU is a processing unit (hardware thread), the leaf of the CPU
	// hierarchy. Each PU owns exactly one cpuset bit.
	PU
	// NUMANode is a memory bank attached as a memory child of the CPU
	// object sharing its locality. Its Subtype describes the memory
	// kind for humans (DRAM, MCDRAM, HBM, NVDIMM, NAM); software must
	// not rely on it, per the paper, and should compare performance
	// attributes instead.
	NUMANode
	// MemCache is a memory-side cache: a cache in front of a NUMA node
	// (e.g. MCDRAM in KNL Cache mode, DRAM in Xeon 2-Level-Memory
	// mode). It appears between the CPU parent and the cached
	// NUMANode in the memory-children chain.
	MemCache

	numTypes = int(MemCache) + 1
)

var typeNames = [...]string{
	Machine:  "Machine",
	Package:  "Package",
	Group:    "Group",
	L3:       "L3",
	L2:       "L2",
	Core:     "Core",
	PU:       "PU",
	NUMANode: "NUMANode",
	MemCache: "MemCache",
}

// String returns the hwloc-style name of the type.
func (t Type) String() string {
	if t < 0 || int(t) >= len(typeNames) {
		return fmt.Sprintf("Type(%d)", int(t))
	}
	return typeNames[t]
}

// ParseType converts a type name back to a Type.
func ParseType(s string) (Type, error) {
	for i, n := range typeNames {
		if strings.EqualFold(n, s) {
			return Type(i), nil
		}
	}
	return 0, fmt.Errorf("topology: unknown object type %q", s)
}

// IsMemory reports whether objects of this type live on the
// memory-children side of the tree.
func (t Type) IsMemory() bool { return t == NUMANode || t == MemCache }

// Object is a node of the topology tree. Construct objects with New and
// assemble them with AddChild/AddMemChild, then call Build to finalize
// a Topology.
type Object struct {
	Type Type

	// OSIndex is the physical index assigned by the "operating
	// system" (our platform definitions), e.g. the OS index of a NUMA
	// node or PU. -1 when meaningless (caches, groups).
	OSIndex int

	// LogicalIndex is the depth-first logical index among objects of
	// the same type, assigned by Build. This is the L# number printed
	// by lstopo.
	LogicalIndex int

	// Subtype is a human-readable qualifier. For NUMANode it names the
	// memory kind (DRAM, MCDRAM, HBM, NVDIMM, NAM).
	Subtype string

	// Name is an optional human-readable label.
	Name string

	// CPUSet is the set of PUs physically below (or, for memory
	// objects, local to) this object. Computed by Build.
	CPUSet *bitmap.Bitmap

	// NodeSet is the set of NUMA node OS indexes below or attached to
	// this object. Computed by Build.
	NodeSet *bitmap.Bitmap

	// Memory is the local memory capacity in bytes (NUMANode only).
	Memory uint64

	// CacheSize is the size in bytes for L2/L3/MemCache objects.
	CacheSize uint64

	// Infos carries free-form key/value annotations, like hwloc info
	// attrs.
	Infos map[string]string

	Parent      *Object
	Children    []*Object // CPU-side children
	MemChildren []*Object // memory-side children (NUMANode, MemCache)
}

// New returns a fresh object of the given type and OS index.
func New(t Type, osIndex int) *Object {
	return &Object{
		Type:         t,
		OSIndex:      osIndex,
		LogicalIndex: -1,
		CPUSet:       bitmap.New(),
		NodeSet:      bitmap.New(),
	}
}

// NewNUMA returns a NUMA node object with the given OS index, memory
// kind subtype and capacity in bytes.
func NewNUMA(osIndex int, subtype string, memory uint64) *Object {
	o := New(NUMANode, osIndex)
	o.Subtype = subtype
	o.Memory = memory
	return o
}

// NewMemCache returns a memory-side cache of the given size. Attach the
// cached NUMA node as its memory child.
func NewMemCache(size uint64) *Object {
	o := New(MemCache, -1)
	o.CacheSize = size
	return o
}

// AddChild appends a CPU-side child and returns the child for chaining.
func (o *Object) AddChild(c *Object) *Object {
	if c.Type.IsMemory() {
		panic(fmt.Sprintf("topology: %s must be added with AddMemChild", c.Type))
	}
	c.Parent = o
	o.Children = append(o.Children, c)
	return c
}

// AddMemChild appends a memory-side child (NUMANode or MemCache) and
// returns the child for chaining.
func (o *Object) AddMemChild(c *Object) *Object {
	if !c.Type.IsMemory() {
		panic(fmt.Sprintf("topology: %s must be added with AddChild", c.Type))
	}
	c.Parent = o
	o.MemChildren = append(o.MemChildren, c)
	return c
}

// SetInfo records a key/value annotation and returns o for chaining.
func (o *Object) SetInfo(key, value string) *Object {
	if o.Infos == nil {
		o.Infos = make(map[string]string)
	}
	o.Infos[key] = value
	return o
}

// Info returns the annotation for key, or "".
func (o *Object) Info(key string) string { return o.Infos[key] }

// String formats like lstopo: "NUMANode L#2 P#2 (NVDIMM, 768GB)".
func (o *Object) String() string {
	var sb strings.Builder
	sb.WriteString(o.Type.String())
	if o.LogicalIndex >= 0 {
		fmt.Fprintf(&sb, " L#%d", o.LogicalIndex)
	}
	if o.OSIndex >= 0 {
		fmt.Fprintf(&sb, " P#%d", o.OSIndex)
	}
	var details []string
	if o.Subtype != "" {
		details = append(details, o.Subtype)
	}
	if o.Memory > 0 {
		details = append(details, FormatBytes(o.Memory))
	}
	if o.CacheSize > 0 {
		details = append(details, FormatBytes(o.CacheSize))
	}
	if len(details) > 0 {
		fmt.Fprintf(&sb, " (%s)", strings.Join(details, ", "))
	}
	return sb.String()
}

// CPUParent walks up to the nearest non-memory ancestor. For a NUMA
// node this is the object defining its locality (the cpuset of the
// cores that are local to it).
func (o *Object) CPUParent() *Object {
	p := o.Parent
	for p != nil && p.Type.IsMemory() {
		p = p.Parent
	}
	return p
}

// Ancestors returns the chain of ancestors from parent to root.
func (o *Object) Ancestors() []*Object {
	var out []*Object
	for p := o.Parent; p != nil; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// FormatBytes renders a byte count the way lstopo does (binary units,
// no decimals at the GB level unless needed).
func FormatBytes(b uint64) string {
	const (
		kb = 1 << 10
		mb = 1 << 20
		gb = 1 << 30
		tb = 1 << 40
	)
	switch {
	case b >= tb && b%tb == 0:
		return fmt.Sprintf("%dTB", b/tb)
	case b >= gb && b%gb == 0:
		return fmt.Sprintf("%dGB", b/gb)
	case b >= gb:
		return fmt.Sprintf("%.1fGB", float64(b)/float64(gb))
	case b >= mb:
		return fmt.Sprintf("%dMB", b/mb)
	case b >= kb:
		return fmt.Sprintf("%dKB", b/kb)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
