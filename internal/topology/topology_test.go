package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetmem/internal/bitmap"
)

// buildMini builds a small dual-package machine:
//
//	Machine
//	├─ Package0 ── mem: NUMA0(DRAM 96G), NUMA2(NVDIMM 768G); cpu: Core0(PU0,PU1), Core1(PU2,PU3)
//	└─ Package1 ── mem: NUMA1(DRAM 96G), NUMA3(NVDIMM 768G); cpu: Core2(PU4,PU5), Core3(PU6,PU7)
func buildMini(t *testing.T) *Topology {
	t.Helper()
	root := New(Machine, -1)
	const gb = 1 << 30
	pu := 0
	for p := 0; p < 2; p++ {
		pkg := root.AddChild(New(Package, p))
		pkg.AddMemChild(NewNUMA(p, "DRAM", 96*gb))
		pkg.AddMemChild(NewNUMA(p+2, "NVDIMM", 768*gb))
		for c := 0; c < 2; c++ {
			core := pkg.AddChild(New(Core, p*2+c))
			for k := 0; k < 2; k++ {
				core.AddChild(New(PU, pu))
				pu++
			}
		}
	}
	topo, err := Build(root)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func TestBuildMini(t *testing.T) {
	topo := buildMini(t)
	if n := topo.NumObjects(Package); n != 2 {
		t.Fatalf("packages = %d, want 2", n)
	}
	if n := topo.NumObjects(PU); n != 8 {
		t.Fatalf("PUs = %d, want 8", n)
	}
	if n := topo.NumObjects(NUMANode); n != 4 {
		t.Fatalf("NUMA nodes = %d, want 4", n)
	}
	if got := topo.Root().CPUSet.ListString(); got != "0-7" {
		t.Fatalf("machine cpuset = %q", got)
	}
	if got := topo.Root().NodeSet.ListString(); got != "0-3" {
		t.Fatalf("machine nodeset = %q", got)
	}
}

func TestLogicalIndexOrder(t *testing.T) {
	topo := buildMini(t)
	for i, pu := range topo.PUs() {
		if pu.LogicalIndex != i {
			t.Fatalf("PU logical index %d at position %d", pu.LogicalIndex, i)
		}
	}
	// NUMA logical order follows DFS: package0's DRAM, package0's
	// NVDIMM, then package1's.
	nodes := topo.NUMANodes()
	wantSub := []string{"DRAM", "NVDIMM", "DRAM", "NVDIMM"}
	wantOS := []int{0, 2, 1, 3}
	for i, n := range nodes {
		if n.Subtype != wantSub[i] || n.OSIndex != wantOS[i] {
			t.Fatalf("node %d = %s/%d, want %s/%d", i, n.Subtype, n.OSIndex, wantSub[i], wantOS[i])
		}
	}
}

func TestMemoryLocality(t *testing.T) {
	topo := buildMini(t)
	dram0 := topo.ObjectByOS(NUMANode, 0)
	if got := dram0.CPUSet.ListString(); got != "0-3" {
		t.Fatalf("DRAM0 locality = %q, want 0-3", got)
	}
	nv3 := topo.ObjectByOS(NUMANode, 3)
	if got := nv3.CPUSet.ListString(); got != "4-7" {
		t.Fatalf("NVDIMM3 locality = %q, want 4-7", got)
	}
	if p := dram0.CPUParent(); p == nil || p.Type != Package || p.OSIndex != 0 {
		t.Fatalf("CPUParent of DRAM0 = %v", p)
	}
}

func TestLocalNUMANodes(t *testing.T) {
	topo := buildMini(t)
	// A thread on PU5 sees package1's two nodes.
	local := topo.LocalNUMANodes(bitmap.NewFromIndexes(5))
	if len(local) != 2 {
		t.Fatalf("local nodes = %d, want 2", len(local))
	}
	if local[0].OSIndex != 1 || local[1].OSIndex != 3 {
		t.Fatalf("local nodes = %v %v", local[0], local[1])
	}
	// A cpuset spanning both packages sees all four.
	all := topo.LocalNUMANodes(bitmap.NewFromRange(0, 7))
	if len(all) != 4 {
		t.Fatalf("all-local nodes = %d, want 4", len(all))
	}
}

func TestCPUlessNUMANode(t *testing.T) {
	root := New(Machine, -1)
	pkg := root.AddChild(New(Package, 0))
	pkg.AddMemChild(NewNUMA(0, "DRAM", 1<<30))
	pkg.AddChild(New(Core, 0)).AddChild(New(PU, 0))
	// Network-attached memory: attached to the machine, no local CPU.
	nam := NewNUMA(1, "NAM", 1<<40)
	machineLevel := root.AddMemChild(nam)
	_ = machineLevel
	topo, err := Build(root)
	if err != nil {
		t.Fatal(err)
	}
	// NAM's locality is the machine cpuset (its CPU parent is the root).
	if got := nam.CPUSet.ListString(); got != "0" {
		t.Fatalf("NAM locality = %q", got)
	}
	local := topo.LocalNUMANodes(bitmap.NewFromIndexes(0))
	if len(local) != 2 {
		t.Fatalf("local = %d, want 2 (DRAM + machine-level NAM)", len(local))
	}
}

func TestMemorySideCache(t *testing.T) {
	root := New(Machine, -1)
	pkg := root.AddChild(New(Package, 0))
	msc := pkg.AddMemChild(NewMemCache(2 << 30))
	dram := NewNUMA(0, "DRAM", 12<<30)
	msc.AddMemChild(dram)
	pkg.AddMemChild(NewNUMA(1, "MCDRAM", 2<<30))
	pkg.AddChild(New(Core, 0)).AddChild(New(PU, 0))
	topo, err := Build(root)
	if err != nil {
		t.Fatal(err)
	}
	if c := MemorySideCacheFor(dram); c == nil || c.CacheSize != 2<<30 {
		t.Fatalf("MemorySideCacheFor(dram) = %v", c)
	}
	mcdram := topo.ObjectByOS(NUMANode, 1)
	if MemorySideCacheFor(mcdram) != nil {
		t.Fatal("MCDRAM should have no memory-side cache")
	}
	// The cache inherits the package locality, and so does the node
	// behind it.
	if got := dram.CPUSet.ListString(); got != "0" {
		t.Fatalf("cached DRAM locality = %q", got)
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("nil root", func(t *testing.T) {
		if _, err := Build(nil); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("non-machine root", func(t *testing.T) {
		if _, err := Build(New(Package, 0)); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("no PU", func(t *testing.T) {
		root := New(Machine, -1)
		root.AddMemChild(NewNUMA(0, "DRAM", 1))
		if _, err := Build(root); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("no NUMA", func(t *testing.T) {
		root := New(Machine, -1)
		root.AddChild(New(PU, 0))
		if _, err := Build(root); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("duplicate PU OS index", func(t *testing.T) {
		root := New(Machine, -1)
		root.AddMemChild(NewNUMA(0, "DRAM", 1))
		root.AddChild(New(PU, 0))
		root.AddChild(New(PU, 0))
		if _, err := Build(root); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("duplicate NUMA OS index", func(t *testing.T) {
		root := New(Machine, -1)
		root.AddMemChild(NewNUMA(0, "DRAM", 1))
		root.AddMemChild(NewNUMA(0, "NVDIMM", 1))
		root.AddChild(New(PU, 0))
		if _, err := Build(root); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("PU without OS index", func(t *testing.T) {
		root := New(Machine, -1)
		root.AddMemChild(NewNUMA(0, "DRAM", 1))
		root.AddChild(New(PU, -1))
		if _, err := Build(root); err == nil {
			t.Fatal("want error")
		}
	})
}

func TestAddChildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddChild(NUMANode) should panic")
		}
	}()
	New(Machine, -1).AddChild(NewNUMA(0, "DRAM", 1))
}

func TestAddMemChildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddMemChild(Core) should panic")
		}
	}()
	New(Machine, -1).AddMemChild(New(Core, 0))
}

func TestCommonAncestor(t *testing.T) {
	topo := buildMini(t)
	pu0 := topo.ObjectByOS(PU, 0)
	pu3 := topo.ObjectByOS(PU, 3)
	pu4 := topo.ObjectByOS(PU, 4)
	if a := CommonAncestor(pu0, pu3); a.Type != Package || a.OSIndex != 0 {
		t.Fatalf("CA(pu0,pu3) = %v", a)
	}
	if a := CommonAncestor(pu0, pu4); a.Type != Machine {
		t.Fatalf("CA(pu0,pu4) = %v", a)
	}
	if a := CommonAncestor(pu0, pu0); a != pu0 {
		t.Fatalf("CA(pu0,pu0) = %v", a)
	}
	dram0 := topo.ObjectByOS(NUMANode, 0)
	if a := CommonAncestor(pu0, dram0); a.Type != Package {
		t.Fatalf("CA(pu0,dram0) = %v", a)
	}
}

func TestObjectString(t *testing.T) {
	topo := buildMini(t)
	n := topo.ObjectByOS(NUMANode, 2)
	if got := n.String(); got != "NUMANode L#1 P#2 (NVDIMM, 768GB)" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseType(t *testing.T) {
	for typ := Type(0); int(typ) < numTypes; typ++ {
		back, err := ParseType(typ.String())
		if err != nil || back != typ {
			t.Fatalf("ParseType(%s) = %v, %v", typ, back, err)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Fatal("ParseType(bogus) should fail")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		b    uint64
		want string
	}{
		{512, "512B"},
		{2 << 10, "2KB"},
		{3 << 20, "3MB"},
		{96 << 30, "96GB"},
		{1<<40 + 512<<30, "1536GB"},
		{2 << 40, "2TB"},
		{96<<30 + 512<<20, "96.5GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.b); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.b, got, c.want)
		}
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	topo := buildMini(t)
	data, err := Export(topo)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Import(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumObjects(PU) != topo.NumObjects(PU) ||
		back.NumObjects(NUMANode) != topo.NumObjects(NUMANode) {
		t.Fatal("import changed object counts")
	}
	for i, n := range topo.NUMANodes() {
		bn := back.NUMANodes()[i]
		if bn.OSIndex != n.OSIndex || bn.Subtype != n.Subtype || bn.Memory != n.Memory {
			t.Fatalf("node %d mismatch: %v vs %v", i, bn, n)
		}
		if !bitmap.Equal(bn.CPUSet, n.CPUSet) {
			t.Fatalf("node %d locality mismatch", i)
		}
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := Import([]byte("{")); err == nil {
		t.Fatal("bad JSON should fail")
	}
	if _, err := Import([]byte(`{"type":"Elephant"}`)); err == nil {
		t.Fatal("unknown type should fail")
	}
	// NUMANode among CPU children.
	if _, err := Import([]byte(`{"type":"Machine","children":[{"type":"NUMANode","os_index":0}]}`)); err == nil {
		t.Fatal("memory object among children should fail")
	}
	// Core among memory children.
	if _, err := Import([]byte(`{"type":"Machine","mem_children":[{"type":"Core","os_index":0}]}`)); err == nil {
		t.Fatal("CPU object among mem_children should fail")
	}
}

// randomTopology builds a random but well-formed machine for property
// tests: 1-4 packages, 1-4 cores each, 1-2 PUs per core, 1-3 NUMA
// nodes per package.
func randomTopology(r *rand.Rand) *Topology {
	root := New(Machine, -1)
	pu, node := 0, 0
	kinds := []string{"DRAM", "HBM", "NVDIMM"}
	npkg := 1 + r.Intn(4)
	for p := 0; p < npkg; p++ {
		pkg := root.AddChild(New(Package, p))
		for n := 0; n < 1+r.Intn(3); n++ {
			pkg.AddMemChild(NewNUMA(node, kinds[r.Intn(len(kinds))], uint64(1+r.Intn(1000))<<30))
			node++
		}
		for c := 0; c < 1+r.Intn(4); c++ {
			core := pkg.AddChild(New(Core, pu))
			for k := 0; k < 1+r.Intn(2); k++ {
				core.AddChild(New(PU, pu))
				pu++
			}
		}
	}
	topo, err := Build(root)
	if err != nil {
		panic(err)
	}
	return topo
}

func TestQuickCPUSetPartition(t *testing.T) {
	// The PU cpusets partition the machine cpuset; package cpusets are
	// disjoint and their union is the machine cpuset.
	f := func(seed int64) bool {
		topo := randomTopology(rand.New(rand.NewSource(seed)))
		union := bitmap.New()
		total := 0
		for _, pkg := range topo.Objects(Package) {
			if bitmap.Intersects(union, pkg.CPUSet) {
				return false
			}
			union.Or(pkg.CPUSet)
			total += pkg.CPUSet.Weight()
		}
		return bitmap.Equal(union, topo.Root().CPUSet) && total == topo.NumObjects(PU)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLocalNodesCoverEverything(t *testing.T) {
	// Every NUMA node is local to at least one PU, and every PU has at
	// least one local node; locality sets equal the CPU parent cpuset.
	f := func(seed int64) bool {
		topo := randomTopology(rand.New(rand.NewSource(seed)))
		for _, n := range topo.NUMANodes() {
			if n.CPUSet.IsZero() {
				return false
			}
			if !bitmap.Equal(n.CPUSet, n.CPUParent().CPUSet) {
				return false
			}
		}
		for _, pu := range topo.PUs() {
			if len(topo.LocalNUMANodes(pu.CPUSet)) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExportImportStable(t *testing.T) {
	f := func(seed int64) bool {
		topo := randomTopology(rand.New(rand.NewSource(seed)))
		d1, err := Export(topo)
		if err != nil {
			return false
		}
		back, err := Import(d1)
		if err != nil {
			return false
		}
		d2, err := Export(back)
		if err != nil {
			return false
		}
		return string(d1) == string(d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	topo := buildMini(t)
	want := "2 Package, 4 Core, 8 PU; 4 NUMANode (2 DRAM, 2 NVDIMM)"
	if got := topo.Summary(); got != want {
		t.Fatalf("Summary = %q, want %q", got, want)
	}
}
