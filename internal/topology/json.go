package topology

import (
	"encoding/json"
	"fmt"
)

// objectDTO is the serialized form of an Object. Parent links and
// computed fields (cpusets, logical indexes) are omitted: they are
// reconstructed by Build on import, which also re-validates the tree.
type objectDTO struct {
	Type        string            `json:"type"`
	OSIndex     *int              `json:"os_index,omitempty"`
	Subtype     string            `json:"subtype,omitempty"`
	Name        string            `json:"name,omitempty"`
	Memory      uint64            `json:"memory,omitempty"`
	CacheSize   uint64            `json:"cache_size,omitempty"`
	Infos       map[string]string `json:"infos,omitempty"`
	Children    []*objectDTO      `json:"children,omitempty"`
	MemChildren []*objectDTO      `json:"mem_children,omitempty"`
}

func toDTO(o *Object) *objectDTO {
	d := &objectDTO{
		Type:      o.Type.String(),
		Subtype:   o.Subtype,
		Name:      o.Name,
		Memory:    o.Memory,
		CacheSize: o.CacheSize,
		Infos:     o.Infos,
	}
	if o.OSIndex >= 0 {
		idx := o.OSIndex
		d.OSIndex = &idx
	}
	for _, c := range o.Children {
		d.Children = append(d.Children, toDTO(c))
	}
	for _, m := range o.MemChildren {
		d.MemChildren = append(d.MemChildren, toDTO(m))
	}
	return d
}

func fromDTO(d *objectDTO) (*Object, error) {
	typ, err := ParseType(d.Type)
	if err != nil {
		return nil, err
	}
	os := -1
	if d.OSIndex != nil {
		os = *d.OSIndex
	}
	o := New(typ, os)
	o.Subtype = d.Subtype
	o.Name = d.Name
	o.Memory = d.Memory
	o.CacheSize = d.CacheSize
	o.Infos = d.Infos
	for _, c := range d.Children {
		child, err := fromDTO(c)
		if err != nil {
			return nil, err
		}
		if child.Type.IsMemory() {
			return nil, fmt.Errorf("topology: %s found among CPU children", child.Type)
		}
		o.AddChild(child)
	}
	for _, m := range d.MemChildren {
		mem, err := fromDTO(m)
		if err != nil {
			return nil, err
		}
		if !mem.Type.IsMemory() {
			return nil, fmt.Errorf("topology: %s found among memory children", mem.Type)
		}
		o.AddMemChild(mem)
	}
	return o, nil
}

// Export serializes the topology to JSON. The output is stable
// (indented) and can be re-imported with Import on another machine,
// mirroring hwloc's XML export/import workflow.
func Export(t *Topology) ([]byte, error) {
	return json.MarshalIndent(toDTO(t.root), "", "  ")
}

// Import deserializes a topology previously produced by Export and
// rebuilds it (recomputing cpusets, logical indexes and validation).
func Import(data []byte) (*Topology, error) {
	var d objectDTO
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("topology: bad JSON: %w", err)
	}
	root, err := fromDTO(&d)
	if err != nil {
		return nil, err
	}
	return Build(root)
}
