// Package trace implements the post-mortem analysis path the paper
// surveys in Section V (Servat et al., MOCA, FLEXMALLOC): record the
// memory-access profile of one run, then replay it under different
// buffer placements without re-running the application, and search the
// placement space for the best assignment.
//
// A Recorder wraps an Engine and captures every phase. A replay maps
// buffer names to nodes and re-executes the same accesses on a fresh
// machine, so "what if the parent array lived on MCDRAM?" is answered
// in microseconds. Two searchers are provided:
//
//   - Exhaustive enumerates all |nodes|^|buffers| placements — the
//     combinatorial explosion the paper warns about in Section V-A,
//     capped to stay tractable;
//   - Greedy orders buffers by miss count and assigns each to the best
//     node given the partial placement — the MOCA-style heuristic.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
)

// BufferInfo describes one buffer of the recorded run.
type BufferInfo struct {
	Name string
	Size uint64
}

// AccessRecord is one access of one phase, referring to buffers by
// name so the trace is placement-independent.
type AccessRecord struct {
	Buffer      string
	ReadBytes   uint64
	WriteBytes  uint64
	RandomReads uint64
	MLP         float64
	CPUSeconds  float64
}

// PhaseRecord is one recorded phase.
type PhaseRecord struct {
	Name     string
	Accesses []AccessRecord
}

// Trace is a complete recorded run.
type Trace struct {
	Buffers []BufferInfo
	Phases  []PhaseRecord
	Threads int
}

// TotalBytes returns the memory footprint of all traced buffers.
func (t *Trace) TotalBytes() uint64 {
	var s uint64
	for _, b := range t.Buffers {
		s += b.Size
	}
	return s
}

// Recorder wraps an engine, capturing phases as they execute.
type Recorder struct {
	e     *memsim.Engine
	trace Trace
	seen  map[string]bool
}

// NewRecorder wraps an engine.
func NewRecorder(e *memsim.Engine) *Recorder {
	return &Recorder{e: e, seen: make(map[string]bool)}
}

// Phase executes and records one phase.
func (r *Recorder) Phase(name string, accesses []memsim.Access) memsim.PhaseResult {
	rec := PhaseRecord{Name: name}
	for _, a := range accesses {
		ar := AccessRecord{
			ReadBytes:   a.ReadBytes,
			WriteBytes:  a.WriteBytes,
			RandomReads: a.RandomReads,
			MLP:         a.MLP,
			CPUSeconds:  a.CPUSeconds,
		}
		if a.Buffer != nil {
			ar.Buffer = a.Buffer.Name
			if !r.seen[a.Buffer.Name] {
				r.seen[a.Buffer.Name] = true
				r.trace.Buffers = append(r.trace.Buffers, BufferInfo{a.Buffer.Name, a.Buffer.Size})
			}
		}
		rec.Accesses = append(rec.Accesses, ar)
	}
	r.trace.Phases = append(r.trace.Phases, rec)
	r.trace.Threads = r.e.Threads()
	return r.e.Phase(name, accesses)
}

// Trace returns the recorded trace (a shallow copy safe to keep).
func (r *Recorder) Trace() Trace {
	t := r.trace
	t.Buffers = append([]BufferInfo(nil), r.trace.Buffers...)
	t.Phases = append([]PhaseRecord(nil), r.trace.Phases...)
	return t
}

// Placement maps buffer names to the OS index of the node holding
// them.
type Placement map[string]int

// String renders a placement deterministically.
func (p Placement) String() string {
	names := make([]string, 0, len(p))
	for n := range p {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s->%d", n, p[n])
	}
	return s
}

// Errors.
var (
	ErrUnknownBuffer = errors.New("trace: placement names a buffer not in the trace")
	ErrTooLarge      = errors.New("trace: placement search space too large")
)

// Replay re-executes the trace on a fresh machine built by newMachine,
// with buffers placed per the placement (buffers missing from the
// placement go to defaultNode). It returns the simulated wall time.
func Replay(t Trace, m *memsim.Machine, initiator *bitmap.Bitmap, pl Placement, defaultNode int) (float64, error) {
	for name := range pl {
		found := false
		for _, b := range t.Buffers {
			if b.Name == name {
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("%w: %q", ErrUnknownBuffer, name)
		}
	}
	bufs := make(map[string]*memsim.Buffer, len(t.Buffers))
	for _, bi := range t.Buffers {
		os, ok := pl[bi.Name]
		if !ok {
			os = defaultNode
		}
		node := m.NodeByOS(os)
		if node == nil {
			return 0, fmt.Errorf("trace: no node with OS index %d", os)
		}
		b, err := m.Alloc(bi.Name, bi.Size, node)
		if err != nil {
			return 0, err
		}
		bufs[bi.Name] = b
	}
	defer func() {
		for _, b := range bufs {
			m.Free(b)
		}
	}()

	e := memsim.NewEngine(m, initiator)
	if t.Threads > 0 {
		e.SetThreads(t.Threads)
	}
	for _, ph := range t.Phases {
		accesses := make([]memsim.Access, 0, len(ph.Accesses))
		for _, a := range ph.Accesses {
			accesses = append(accesses, memsim.Access{
				Buffer:      bufs[a.Buffer],
				ReadBytes:   a.ReadBytes,
				WriteBytes:  a.WriteBytes,
				RandomReads: a.RandomReads,
				MLP:         a.MLP,
				CPUSeconds:  a.CPUSeconds,
			})
		}
		e.Phase(ph.Name, accesses)
	}
	return e.Elapsed(), nil
}

// SearchResult is the outcome of a placement search.
type SearchResult struct {
	Best      Placement
	Seconds   float64
	Evaluated int
}

// Exhaustive tries every assignment of traced buffers to the candidate
// nodes (skipping assignments that exceed a node's capacity). The
// space is |nodes|^|buffers|; maxEvals caps it (ErrTooLarge beyond),
// reproducing the Section V-A combinatorial-explosion discussion.
func Exhaustive(t Trace, mk func() (*memsim.Machine, error), initiator *bitmap.Bitmap, nodeOS []int, maxEvals int) (SearchResult, error) {
	if len(nodeOS) == 0 || len(t.Buffers) == 0 {
		return SearchResult{}, errors.New("trace: nothing to search")
	}
	total := math.Pow(float64(len(nodeOS)), float64(len(t.Buffers)))
	if maxEvals > 0 && total > float64(maxEvals) {
		return SearchResult{}, fmt.Errorf("%w: %d^%d = %.0f placements (cap %d)",
			ErrTooLarge, len(nodeOS), len(t.Buffers), total, maxEvals)
	}
	res := SearchResult{Seconds: math.Inf(1)}
	assign := make([]int, len(t.Buffers))
	for {
		pl := Placement{}
		for i, bi := range t.Buffers {
			pl[bi.Name] = nodeOS[assign[i]]
		}
		m, err := mk()
		if err != nil {
			return SearchResult{}, err
		}
		secs, err := Replay(t, m, initiator, pl, nodeOS[0])
		res.Evaluated++
		if err == nil && secs < res.Seconds {
			res.Seconds = secs
			res.Best = pl
		} else if err != nil && !errors.Is(err, memsim.ErrNoCapacity) {
			return SearchResult{}, err
		}
		// Increment the mixed-radix counter.
		i := 0
		for ; i < len(assign); i++ {
			assign[i]++
			if assign[i] < len(nodeOS) {
				break
			}
			assign[i] = 0
		}
		if i == len(assign) {
			break
		}
	}
	if res.Best == nil {
		return SearchResult{}, errors.New("trace: no feasible placement")
	}
	return res, nil
}

// Greedy orders buffers by their traced miss pressure (random reads
// weighted heaviest, then streamed traffic) and assigns each in turn
// to the node that minimizes the replay time given the assignments so
// far — linear in buffers × nodes instead of exponential.
func Greedy(t Trace, mk func() (*memsim.Machine, error), initiator *bitmap.Bitmap, nodeOS []int) (SearchResult, error) {
	if len(nodeOS) == 0 || len(t.Buffers) == 0 {
		return SearchResult{}, errors.New("trace: nothing to search")
	}
	// Pressure per buffer.
	pressure := make(map[string]float64)
	for _, ph := range t.Phases {
		for _, a := range ph.Accesses {
			if a.Buffer == "" {
				continue
			}
			pressure[a.Buffer] += 8*float64(a.RandomReads) + float64(a.ReadBytes+a.WriteBytes)
		}
	}
	order := make([]BufferInfo, len(t.Buffers))
	copy(order, t.Buffers)
	sort.SliceStable(order, func(i, j int) bool { return pressure[order[i].Name] > pressure[order[j].Name] })

	res := SearchResult{Best: Placement{}}
	for _, bi := range order {
		bestOS, bestSecs := -1, math.Inf(1)
		for _, os := range nodeOS {
			pl := Placement{}
			for k, v := range res.Best {
				pl[k] = v
			}
			pl[bi.Name] = os
			// Unassigned buffers ride along on this candidate too, so
			// capacity pressure is felt early.
			m, err := mk()
			if err != nil {
				return SearchResult{}, err
			}
			secs, err := Replay(t, m, initiator, pl, os)
			res.Evaluated++
			if err != nil {
				if errors.Is(err, memsim.ErrNoCapacity) {
					continue
				}
				return SearchResult{}, err
			}
			if secs < bestSecs {
				bestSecs, bestOS = secs, os
			}
		}
		if bestOS < 0 {
			return SearchResult{}, fmt.Errorf("trace: buffer %q fits no candidate node", bi.Name)
		}
		res.Best[bi.Name] = bestOS
		res.Seconds = bestSecs
	}
	// Final replay with the complete placement (no ride-along).
	m, err := mk()
	if err != nil {
		return SearchResult{}, err
	}
	secs, err := Replay(t, m, initiator, res.Best, nodeOS[0])
	if err != nil {
		return SearchResult{}, err
	}
	res.Seconds = secs
	return res, nil
}
