package trace_test

import (
	"fmt"
	"log"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
	"hetmem/internal/trace"
)

// Record one run, then search placements post-mortem: both buffers
// belong on the MCDRAM here (the chaser's concurrent misses load the
// DDR4 enough that its loaded latency loses), and the replayed
// optimum says so without re-running the application.
func Example() {
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		log.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	ini := bitmap.NewFromRange(0, 15)

	streamy, _ := m.Alloc("streamy", 2<<30, m.NodeByOS(0))
	chasey, _ := m.Alloc("chasey", 2<<30, m.NodeByOS(0))
	rec := trace.NewRecorder(memsim.NewEngine(m, ini))
	rec.Phase("stream", []memsim.Access{{Buffer: streamy, ReadBytes: 40 << 30}})
	rec.Phase("chase", []memsim.Access{{Buffer: chasey, RandomReads: 40_000_000, MLP: 2}})

	res, err := trace.Exhaustive(rec.Trace(), p.NewMachine, ini, []int{0, 4}, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best placement after %d replays: %s\n", res.Evaluated, res.Best)
	// Output:
	// best placement after 4 replays: chasey->4 streamy->4
}
