package trace

import (
	"errors"
	"math"
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

const gib = uint64(1) << 30

func knl(t *testing.T) (*platform.Platform, func() (*memsim.Machine, error)) {
	t.Helper()
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		t.Fatal(err)
	}
	return p, func() (*memsim.Machine, error) { return p.NewMachine() }
}

// mixedApp runs a two-buffer application: "streamy" is bandwidth-bound
// and "chasey" is latency-bound, so the optimal placement splits them
// (streamy on MCDRAM, chasey anywhere with low latency).
func mixedApp(t *testing.T, m *memsim.Machine, ini *bitmap.Bitmap) Trace {
	t.Helper()
	streamy, err := m.Alloc("streamy", 2*gib, m.NodeByOS(0))
	if err != nil {
		t.Fatal(err)
	}
	chasey, err := m.Alloc("chasey", 2*gib, m.NodeByOS(0))
	if err != nil {
		t.Fatal(err)
	}
	e := memsim.NewEngine(m, ini)
	r := NewRecorder(e)
	for i := 0; i < 3; i++ {
		r.Phase("stream", []memsim.Access{{Buffer: streamy, ReadBytes: 40 * gib, WriteBytes: 10 * gib}})
		r.Phase("chase", []memsim.Access{{Buffer: chasey, RandomReads: 40_000_000, MLP: 2}})
	}
	return r.Trace()
}

func TestRecorderCapturesEverything(t *testing.T) {
	p, mk := knl(t)
	m, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	ini := bitmap.NewFromRange(0, 15)
	tr := mixedApp(t, m, ini)
	if len(tr.Buffers) != 2 {
		t.Fatalf("buffers = %d", len(tr.Buffers))
	}
	if len(tr.Phases) != 6 {
		t.Fatalf("phases = %d", len(tr.Phases))
	}
	if tr.Threads != 16 {
		t.Fatalf("threads = %d", tr.Threads)
	}
	if tr.TotalBytes() != 4*gib {
		t.Fatalf("total = %d", tr.TotalBytes())
	}
	if tr.Phases[0].Accesses[0].Buffer != "streamy" || tr.Phases[0].Accesses[0].ReadBytes != 40*gib {
		t.Fatalf("access record = %+v", tr.Phases[0].Accesses[0])
	}
	_ = p
}

func TestReplayMatchesLive(t *testing.T) {
	_, mk := knl(t)
	m, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	ini := bitmap.NewFromRange(0, 15)

	// Live run with both buffers on DRAM#0.
	streamy, _ := m.Alloc("streamy", 2*gib, m.NodeByOS(0))
	chasey, _ := m.Alloc("chasey", 2*gib, m.NodeByOS(0))
	e := memsim.NewEngine(m, ini)
	r := NewRecorder(e)
	r.Phase("stream", []memsim.Access{{Buffer: streamy, ReadBytes: 40 * gib}})
	r.Phase("chase", []memsim.Access{{Buffer: chasey, RandomReads: 40_000_000, MLP: 2}})
	live := e.Elapsed()

	// Replaying the same placement on a fresh machine reproduces the
	// time exactly (the model is deterministic).
	m2, _ := mk()
	replayed, err := Replay(r.Trace(), m2, ini, Placement{"streamy": 0, "chasey": 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(replayed-live)/live > 1e-9 {
		t.Fatalf("replay %.6f != live %.6f", replayed, live)
	}
}

func TestReplayPlacementMatters(t *testing.T) {
	_, mk := knl(t)
	m, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	ini := bitmap.NewFromRange(0, 15)
	tr := mixedApp(t, m, ini)

	onDRAM, err := Replay(tr, mustMachine(t, mk), ini, Placement{"streamy": 0, "chasey": 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	split, err := Replay(tr, mustMachine(t, mk), ini, Placement{"streamy": 4, "chasey": 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if split >= onDRAM {
		t.Fatalf("streaming buffer on MCDRAM should win: %.3f vs %.3f", split, onDRAM)
	}
}

func mustMachine(t *testing.T, mk func() (*memsim.Machine, error)) *memsim.Machine {
	t.Helper()
	m, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReplayErrors(t *testing.T) {
	_, mk := knl(t)
	m := mustMachine(t, mk)
	ini := bitmap.NewFromRange(0, 15)
	tr := mixedApp(t, m, ini)

	if _, err := Replay(tr, mustMachine(t, mk), ini, Placement{"bogus": 0}, 0); !errors.Is(err, ErrUnknownBuffer) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Replay(tr, mustMachine(t, mk), ini, Placement{"streamy": 99}, 0); err == nil {
		t.Fatal("unknown node should fail")
	}
	// Capacity failure: both 2GiB buffers forced onto the 4GiB MCDRAM
	// is fine, but oversize default node placement must fail cleanly.
	big := Trace{
		Buffers: []BufferInfo{{"huge", 30 * gib}},
		Phases:  []PhaseRecord{{Name: "p", Accesses: []AccessRecord{{Buffer: "huge", ReadBytes: gib}}}},
	}
	if _, err := Replay(big, mustMachine(t, mk), ini, Placement{"huge": 4}, 4); !errors.Is(err, memsim.ErrNoCapacity) {
		t.Fatalf("err = %v", err)
	}
}

func TestExhaustiveFindsSplit(t *testing.T) {
	_, mk := knl(t)
	m := mustMachine(t, mk)
	ini := bitmap.NewFromRange(0, 15)
	tr := mixedApp(t, m, ini)

	res, err := Exhaustive(tr, mk, ini, []int{0, 4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 4 { // 2 buffers × 2 nodes
		t.Fatalf("evaluated = %d", res.Evaluated)
	}
	// The optimum puts the streaming buffer on MCDRAM (OS 4); the
	// chasing buffer's node barely matters but DRAM has the lower
	// latency.
	if res.Best["streamy"] != 4 {
		t.Fatalf("best placement = %v", res.Best)
	}
	// The optimum beats (or ties) every uniform placement.
	for _, uniform := range []Placement{{"streamy": 0, "chasey": 0}, {"streamy": 4, "chasey": 4}} {
		secs, err := Replay(tr, mustMachine(t, mk), ini, uniform, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Seconds > secs*1.0001 {
			t.Fatalf("exhaustive %.3f worse than uniform %v %.3f", res.Seconds, uniform, secs)
		}
	}
}

func TestExhaustiveExplosionGuard(t *testing.T) {
	_, mk := knl(t)
	ini := bitmap.NewFromRange(0, 15)
	tr := Trace{Threads: 16}
	for i := 0; i < 20; i++ {
		tr.Buffers = append(tr.Buffers, BufferInfo{Name: string(rune('a' + i)), Size: 1 << 20})
	}
	if _, err := Exhaustive(tr, mk, ini, []int{0, 4}, 1000); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestGreedyMatchesExhaustiveHere(t *testing.T) {
	_, mk := knl(t)
	m := mustMachine(t, mk)
	ini := bitmap.NewFromRange(0, 15)
	tr := mixedApp(t, m, ini)

	ex, err := Exhaustive(tr, mk, ini, []int{0, 4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Greedy(tr, mk, ini, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if gr.Best["streamy"] != ex.Best["streamy"] {
		t.Fatalf("greedy %v vs exhaustive %v", gr.Best, ex.Best)
	}
	if gr.Seconds > ex.Seconds*1.05 {
		t.Fatalf("greedy %.3f much worse than exhaustive %.3f", gr.Seconds, ex.Seconds)
	}
	// Greedy's evaluation count is linear: buffers × nodes + 1 final.
	if gr.Evaluated > len(tr.Buffers)*2+1 {
		t.Fatalf("greedy evaluated %d placements", gr.Evaluated)
	}
}

func TestGreedyRespectsCapacity(t *testing.T) {
	// A 10 GiB streaming buffer cannot use the 4 GiB MCDRAM: greedy
	// must keep it on DRAM and still place the small hot buffer well.
	_, mk := knl(t)
	m := mustMachine(t, mk)
	ini := bitmap.NewFromRange(0, 15)
	big, _ := m.Alloc("big-stream", 10*gib, m.NodeByOS(0))
	small, _ := m.Alloc("small-stream", 1*gib, m.NodeByOS(0))
	e := memsim.NewEngine(m, ini)
	r := NewRecorder(e)
	r.Phase("p", []memsim.Access{
		{Buffer: big, ReadBytes: 20 * gib},
		{Buffer: small, ReadBytes: 20 * gib},
	})
	res, err := Greedy(r.Trace(), mk, ini, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["big-stream"] != 0 || res.Best["small-stream"] != 4 {
		t.Fatalf("placement = %v", res.Best)
	}
}

func TestPlacementString(t *testing.T) {
	p := Placement{"b": 1, "a": 0}
	if got := p.String(); got != "a->0 b->1" {
		t.Fatalf("String = %q", got)
	}
}
