package bench

import (
	"errors"
	"math"
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

func knlMachine(t *testing.T) (*memsim.Machine, *platform.Platform) {
	t.Helper()
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func xeonMachine(t *testing.T) (*memsim.Machine, *platform.Platform) {
	t.Helper()
	p, err := platform.Get("xeon")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

func TestMeasureAllLocalPairs(t *testing.T) {
	m, p := knlMachine(t)
	results, err := MeasureAll(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 clusters × 2 local nodes each.
	if len(results) != 8 {
		t.Fatalf("results = %d, want 8", len(results))
	}
	for _, r := range results {
		if !r.Local {
			t.Fatalf("non-local pair measured without IncludeRemote: %+v", r)
		}
		if r.ReadBW <= 0 || r.WriteBW <= 0 || r.TriadBW <= 0 || r.IdleLatency <= 0 {
			t.Fatalf("degenerate measurement %+v", r)
		}
		if r.RandomBW <= 0 || r.RandomBW > r.ReadBW*1.1 {
			t.Fatalf("random bandwidth %.1f implausible vs read %.1f", r.RandomBW, r.ReadBW)
		}
		if r.LoadedLatency < r.IdleLatency {
			t.Fatalf("loaded latency %f below idle %f", r.LoadedLatency, r.IdleLatency)
		}
	}
	// Probing must not leak allocations.
	for _, n := range m.Nodes() {
		if n.Allocated() != 0 {
			t.Fatalf("probe leaked %d bytes on %v", n.Allocated(), n.Obj)
		}
	}
	_ = p
}

func TestMeasuredValuesTrackModel(t *testing.T) {
	m, p := knlMachine(t)
	cluster0 := p.Topo.ObjectByLogical(0, 0) // Machine
	_ = cluster0
	results, err := MeasureAll(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		model := m.Node(r.Target).Model
		// Read bandwidth within 20% of the model (per-thread caps and
		// total-BW bound can shave it).
		if r.ReadBW > model.ReadBW*1.01 {
			t.Fatalf("measured read bw %.1f exceeds model %.1f", r.ReadBW, model.ReadBW)
		}
		if r.ReadBW < model.TotalBW*0.5 {
			t.Fatalf("measured read bw %.1f implausibly low (model total %.1f)", r.ReadBW, model.TotalBW)
		}
		// Idle latency within 15% of the model (probe buffer doesn't
		// fully defeat the LLC).
		if math.Abs(r.IdleLatency-model.IdleLatency)/model.IdleLatency > 0.15 {
			t.Fatalf("measured latency %.0f vs model %.0f", r.IdleLatency, model.IdleLatency)
		}
	}
}

func TestKNLRankingMCDRAMFaster(t *testing.T) {
	m, p := knlMachine(t)
	results, err := MeasureAll(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var dram, mcdram *Result
	for i := range results {
		r := &results[i]
		if r.Target.OSIndex == 0 {
			dram = r
		}
		if r.Target.OSIndex == 4 {
			mcdram = r
		}
	}
	if dram == nil || mcdram == nil {
		t.Fatal("missing cluster-0 results")
	}
	if mcdram.TriadBW <= dram.TriadBW*2 {
		t.Fatalf("MCDRAM triad %.1f should be well above DRAM %.1f", mcdram.TriadBW, dram.TriadBW)
	}
	// The paper's key KNL observation: latencies are close (within
	// ~15%), so latency barely discriminates, while bandwidth does.
	if math.Abs(mcdram.IdleLatency-dram.IdleLatency)/dram.IdleLatency > 0.15 {
		t.Fatalf("KNL latencies should be similar: MCDRAM %.0f vs DRAM %.0f", mcdram.IdleLatency, dram.IdleLatency)
	}
	_ = p
}

func TestApplyPopulatesRegistry(t *testing.T) {
	m, p := knlMachine(t)
	results, err := MeasureAll(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := Apply(results, reg); err != nil {
		t.Fatal(err)
	}
	// From a cluster-0 core, the best local bandwidth target is the
	// MCDRAM; the best capacity target is the DRAM.
	ini := bitmap.NewFromIndexes(3)
	best, _, err := reg.BestLocalTarget(memattr.Bandwidth, ini)
	if err != nil || best.Subtype != "MCDRAM" {
		t.Fatalf("best bandwidth = %v, %v", best, err)
	}
	best, _, err = reg.BestLocalTarget(memattr.Capacity, ini)
	if err != nil || best.Subtype != "DRAM" {
		t.Fatalf("best capacity = %v, %v", best, err)
	}
	if !reg.HasValues(memattr.WriteBandwidth) {
		t.Fatal("write bandwidth not populated")
	}
}

func TestRegisterTriad(t *testing.T) {
	m, p := knlMachine(t)
	results, err := MeasureAll(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	id, err := RegisterTriad(results, reg)
	if err != nil {
		t.Fatal(err)
	}
	best, v, err := reg.BestLocalTarget(id, bitmap.NewFromIndexes(0))
	if err != nil || best.Subtype != "MCDRAM" || v == 0 {
		t.Fatalf("best triad = %v (%d), %v", best, v, err)
	}
	// Registering twice must fail (duplicate name).
	if _, err := RegisterTriad(results, reg); err == nil {
		t.Fatal("duplicate triad registration should fail")
	}
}

func TestIncludeRemote(t *testing.T) {
	m, p := xeonMachine(t)
	results, err := MeasureAll(m, Options{IncludeRemote: true})
	if err != nil {
		t.Fatal(err)
	}
	// 2 packages × 4 nodes.
	if len(results) != 8 {
		t.Fatalf("results = %d, want 8", len(results))
	}
	var localD, remoteD *Result
	for i := range results {
		r := &results[i]
		if r.Target.OSIndex == 0 {
			if r.Local {
				localD = r
			} else {
				remoteD = r
			}
		}
	}
	if localD == nil || remoteD == nil {
		t.Fatal("missing local/remote DRAM results")
	}
	if remoteD.ReadBW >= localD.ReadBW {
		t.Fatalf("remote bw %.1f should be below local %.1f", remoteD.ReadBW, localD.ReadBW)
	}
	if remoteD.IdleLatency <= localD.IdleLatency {
		t.Fatalf("remote latency %.0f should exceed local %.0f", remoteD.IdleLatency, localD.IdleLatency)
	}
	// The Section VIII scenario: with remote values in the registry,
	// the API can answer "local NVDIMM or remote DRAM?" — remote DRAM
	// has lower latency than local NVDIMM on this machine.
	reg := memattr.NewRegistry(p.Topo)
	if err := Apply(results, reg); err != nil {
		t.Fatal(err)
	}
	pkg0 := bitmap.NewFromRange(0, 19)
	remoteDRAM := p.Topo.NUMANodes()[2] // package 1's DRAM
	localNV := p.Topo.NUMANodes()[1]
	vr, err1 := reg.Value(memattr.Latency, remoteDRAM, pkg0)
	vl, err2 := reg.Value(memattr.Latency, localNV, pkg0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if vr >= vl {
		t.Fatalf("remote DRAM latency %d should beat local NVDIMM %d on this machine", vr, vl)
	}
}

func TestMeasurePairNoRoom(t *testing.T) {
	m, p := knlMachine(t)
	mcdram := p.Topo.NUMANodes()[1] // 4GB
	// Fill it almost completely.
	if _, err := m.Alloc("hog", 4*platform.GiB-32<<20, m.Node(mcdram)); err != nil {
		t.Fatal(err)
	}
	_, err := MeasurePair(m, mcdram.CPUSet, mcdram, Options{})
	if !errors.Is(err, ErrNoRoom) {
		t.Fatalf("err = %v, want ErrNoRoom", err)
	}
}

func TestRegisterRandomBW(t *testing.T) {
	m, p := knlMachine(t)
	results, err := MeasureAll(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	id, err := RegisterRandomBW(results, reg)
	if err != nil {
		t.Fatal(err)
	}
	// On KNL the MCDRAM also wins random-access bandwidth (the GUPS
	// result in attribute form).
	best, v, err := reg.BestLocalTarget(id, bitmap.NewFromIndexes(0))
	if err != nil || best.Subtype != "MCDRAM" || v == 0 {
		t.Fatalf("best random bw = %v (%d), %v", best, v, err)
	}
}
