// Package bench implements benchmark-based discovery of memory
// performance attributes — the "External Sources" column of Table I in
// the paper. When a platform exposes no HMAT (e.g. Knights Landing,
// which predates ACPI 6.2), or exposes only local values, attribute
// values are measured: a STREAM-style kernel for read/write/triad
// bandwidth (McCalpin), an lmbench-style dependent pointer chase for
// idle latency, and a Multichase-style loaded probe for latency under
// bandwidth pressure. The measured values are then fed into the
// memory-attribute registry exactly like firmware values would be.
//
// Probes run on the simulated machine through the same access engine
// as applications, so a measured ranking always reflects what an
// application would actually observe.
package bench

import (
	"errors"
	"fmt"

	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

// Result holds the measured attribute values for one (initiator,
// target) pair. Bandwidths are GiB/s, latencies nanoseconds.
type Result struct {
	Target    *topology.Object
	Initiator *bitmap.Bitmap
	Local     bool

	ReadBW  float64
	WriteBW float64
	TriadBW float64

	// RandomBW is the effective bandwidth of concurrent random reads
	// (Multichase's bandwidth mode): line fills divided by the time
	// the misses take at full memory-level parallelism.
	RandomBW float64

	IdleLatency   float64
	LoadedLatency float64
}

// Options controls a measurement campaign.
type Options struct {
	// IncludeRemote also probes non-local (initiator, target) pairs,
	// enabling comparisons Linux cannot provide (paper Section VIII).
	IncludeRemote bool
	// ProbeBytes is the probe buffer size; capped to half the node's
	// free capacity. Default 1 GiB.
	ProbeBytes uint64
	// ChaseCount is the number of dependent loads in the latency
	// probe. Default 2^22.
	ChaseCount uint64
}

func (o *Options) defaults() {
	if o.ProbeBytes == 0 {
		o.ProbeBytes = 1 << 30
	}
	if o.ChaseCount == 0 {
		o.ChaseCount = 1 << 22
	}
}

// ErrNoRoom means a node is too full to probe.
var ErrNoRoom = errors.New("bench: not enough free capacity to probe node")

// initiatorDomains returns the distinct localities of the machine (CPU
// parents of NUMA nodes), in deterministic order.
func initiatorDomains(topo *topology.Topology) []*topology.Object {
	var out []*topology.Object
	seen := make(map[*topology.Object]bool)
	for _, n := range topo.NUMANodes() {
		p := n.CPUParent()
		if p != nil && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// MeasureAll probes every local (initiator, target) pair, plus remote
// pairs when requested.
func MeasureAll(m *memsim.Machine, opts Options) ([]Result, error) {
	opts.defaults()
	topo := m.Topology()
	var results []Result
	for _, dom := range initiatorDomains(topo) {
		for _, node := range topo.NUMANodes() {
			local := bitmap.Intersects(dom.CPUSet, node.CPUSet)
			if !local && !opts.IncludeRemote {
				continue
			}
			r, err := MeasurePair(m, dom.CPUSet, node, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: probing %v from %v: %w", node, dom, err)
			}
			results = append(results, r)
		}
	}
	return results, nil
}

// MeasurePair measures one (initiator, target) pair.
func MeasurePair(m *memsim.Machine, initiator *bitmap.Bitmap, node *topology.Object, opts Options) (Result, error) {
	opts.defaults()
	sim := m.Node(node)
	size := opts.ProbeBytes
	if max := sim.Available() / 2; size > max {
		size = max
	}
	if size < 64<<20 {
		return Result{}, fmt.Errorf("%w: %v has %d free", ErrNoRoom, node, sim.Available())
	}
	res := Result{
		Target:    node,
		Initiator: initiator.Copy(),
		Local:     bitmap.Intersects(initiator, node.CPUSet),
	}

	buf, err := m.Alloc("bench-probe", size, sim)
	if err != nil {
		return Result{}, err
	}
	defer m.Free(buf)

	// Bandwidth probes: all threads of the initiator, several passes
	// over the buffer.
	const passes = 4
	traffic := size * passes

	e := memsim.NewEngine(m, initiator)
	p := e.Phase("read", []memsim.Access{{Buffer: buf, ReadBytes: traffic}})
	res.ReadBW = bwOf(traffic, p.StreamSeconds)

	e = memsim.NewEngine(m, initiator)
	p = e.Phase("write", []memsim.Access{{Buffer: buf, WriteBytes: traffic}})
	res.WriteBW = bwOf(traffic, p.StreamSeconds)

	e = memsim.NewEngine(m, initiator)
	p = e.Phase("triad", []memsim.Access{{Buffer: buf, ReadBytes: traffic * 2 / 3, WriteBytes: traffic / 3}})
	res.TriadBW = bwOf(traffic, p.StreamSeconds)

	// Random bandwidth: all threads, many concurrent misses.
	e = memsim.NewEngine(m, initiator)
	p = e.Phase("randbw", []memsim.Access{{Buffer: buf, RandomReads: opts.ChaseCount * 8, MLP: 16}})
	if p.RandomSeconds > 0 {
		res.RandomBW = float64(opts.ChaseCount*8) * 64 / float64(1<<30) / p.RandomSeconds
	}

	// Idle latency: one thread, one dependent chase.
	e = memsim.NewEngine(m, initiator)
	e.SetThreads(1)
	p = e.Phase("chase", []memsim.Access{{Buffer: buf, RandomReads: opts.ChaseCount, MLP: 1}})
	res.IdleLatency = p.RandomSeconds / float64(opts.ChaseCount) * 1e9

	// Loaded latency: the chase runs while the remaining threads
	// saturate the node (Multichase's loaded-latency mode).
	e = memsim.NewEngine(m, initiator)
	p = e.Phase("loaded-chase", []memsim.Access{
		{Buffer: buf, ReadBytes: traffic * 4},
		{Buffer: buf, RandomReads: opts.ChaseCount, MLP: 1},
	})
	chaseTime := p.RandomSeconds * float64(e.Threads())
	res.LoadedLatency = chaseTime / float64(opts.ChaseCount) * 1e9
	return res, nil
}

func bwOf(bytes uint64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / float64(1<<30) / seconds
}

// Apply feeds measured results into a registry: Bandwidth gets the
// read bandwidth in MiB/s (matching the firmware convention),
// Read/WriteBandwidth their respective figures, and Latency the idle
// chase latency in nanoseconds.
func Apply(results []Result, reg *memattr.Registry) error {
	for _, r := range results {
		mb := func(gib float64) uint64 { return uint64(gib*1024 + 0.5) }
		type sv struct {
			id memattr.ID
			v  uint64
		}
		for _, s := range []sv{
			{memattr.Bandwidth, mb(r.ReadBW)},
			{memattr.ReadBandwidth, mb(r.ReadBW)},
			{memattr.WriteBandwidth, mb(r.WriteBW)},
			{memattr.Latency, uint64(r.IdleLatency + 0.5)},
		} {
			if err := reg.SetValue(s.id, r.Target, r.Initiator, s.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// TriadAttrName is the name of the custom attribute registered by
// RegisterTriad.
const TriadAttrName = "StreamTriadScore"

// RegisterTriad registers the paper's example of a custom metric — a
// STREAM-Triad score combining read and write bandwidth — and fills it
// from measured results. Values are MiB/s, higher first.
func RegisterTriad(results []Result, reg *memattr.Registry) (memattr.ID, error) {
	id, err := reg.Register(TriadAttrName, memattr.HigherFirst|memattr.NeedInitiator)
	if err != nil {
		return 0, err
	}
	for _, r := range results {
		if err := reg.SetValue(id, r.Target, r.Initiator, uint64(r.TriadBW*1024+0.5)); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// RandomBWAttrName is the name of the custom attribute registered by
// RegisterRandomBW.
const RandomBWAttrName = "RandomAccessBandwidth"

// RegisterRandomBW registers a custom attribute carrying the measured
// random-access bandwidth (MiB/s) — the metric that separates GUPS-like
// workloads from STREAM-like ones better than either Latency or
// Bandwidth alone.
func RegisterRandomBW(results []Result, reg *memattr.Registry) (memattr.ID, error) {
	id, err := reg.Register(RandomBWAttrName, memattr.HigherFirst|memattr.NeedInitiator)
	if err != nil {
		return 0, err
	}
	for _, r := range results {
		if err := reg.SetValue(id, r.Target, r.Initiator, uint64(r.RandomBW*1024+0.5)); err != nil {
			return 0, err
		}
	}
	return id, nil
}
