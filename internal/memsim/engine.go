package memsim

import (
	"fmt"

	"hetmem/internal/bitmap"
)

// Access describes how one phase of an application touches one buffer.
type Access struct {
	Buffer *Buffer

	// ReadBytes and WriteBytes are streamed (sequential) traffic at
	// the kernel level, before cache filtering.
	ReadBytes  uint64
	WriteBytes uint64

	// RandomReads is the number of data-dependent irregular reads
	// (graph indirections, pointer chasing). Each one that misses the
	// caches pays the node's load-to-use latency.
	RandomReads uint64

	// MLP is the memory-level parallelism of the random reads per
	// thread: 1 for a pure pointer chase, higher when independent
	// requests overlap (e.g. several edges of a BFS frontier vertex).
	// Zero means 1.
	MLP float64

	// CPUSeconds is additional pure-compute time for this access
	// (already divided by threads), letting applications model their
	// per-element instruction cost beyond the engine's default.
	CPUSeconds float64
}

// PhaseResult reports the timing decomposition of one phase.
type PhaseResult struct {
	Name          string
	Seconds       float64
	StreamSeconds float64
	RandomSeconds float64
	CPUSeconds    float64

	// BoundKind is the memory kind of the node whose bandwidth bound
	// the streamed part ("" when there was no streamed traffic).
	BoundKind string
	// BoundNode is the OS index of that node (-1 if none).
	BoundNode int

	// AchievedBW is the total streamed traffic divided by
	// StreamSeconds, in GiB/s (0 if no streamed traffic).
	AchievedBW float64
}

// Stats accumulates profiling counters across phases. They feed the
// VTune-style summary in internal/profile.
type Stats struct {
	Elapsed    float64
	CPUSeconds float64
	// StallSeconds is time the cores spent waiting on memory, per
	// memory kind.
	StallSeconds map[string]float64
	// BWBoundSeconds is time spent saturating the bandwidth of a node,
	// per memory kind (VTune's "X Bandwidth Bound % of elapsed time").
	BWBoundSeconds map[string]float64
	Phases         []PhaseResult
}

func newStats() Stats {
	return Stats{
		StallSeconds:   make(map[string]float64),
		BWBoundSeconds: make(map[string]float64),
	}
}

// Engine executes phases on a machine from a given initiator (the set
// of PUs running the threads). It owns a virtual clock.
//
// An Engine is not safe for concurrent use: phases mutate shared
// buffer and node counters. Model concurrent jobs with one engine per
// job over the shared (mutex-protected) Machine, as the distributed
// Graph500 does.
type Engine struct {
	m         *Machine
	initiator *bitmap.Bitmap
	threads   int
	stats     Stats
}

// NewEngine creates an engine with one software thread per PU of the
// initiator cpuset.
func NewEngine(m *Machine, initiator *bitmap.Bitmap) *Engine {
	threads := initiator.Weight()
	if threads == 0 {
		threads = 1
	}
	return &Engine{m: m, initiator: initiator.Copy(), threads: threads, stats: newStats()}
}

// SetThreads overrides the thread count (e.g. 16 MPI ranks on a
// 20-core package).
func (e *Engine) SetThreads(n int) {
	if n > 0 {
		e.threads = n
	}
}

// Threads returns the thread count.
func (e *Engine) Threads() int { return e.threads }

// Initiator returns a copy of the engine's initiator cpuset.
func (e *Engine) Initiator() *bitmap.Bitmap { return e.initiator.Copy() }

// Machine returns the underlying machine.
func (e *Engine) Machine() *Machine { return e.m }

// Elapsed returns the virtual clock in seconds.
func (e *Engine) Elapsed() float64 { return e.stats.Elapsed }

// Stats returns a copy of the accumulated statistics.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.StallSeconds = make(map[string]float64, len(e.stats.StallSeconds))
	for k, v := range e.stats.StallSeconds {
		s.StallSeconds[k] = v
	}
	s.BWBoundSeconds = make(map[string]float64, len(e.stats.BWBoundSeconds))
	for k, v := range e.stats.BWBoundSeconds {
		s.BWBoundSeconds[k] = v
	}
	s.Phases = append([]PhaseResult(nil), e.stats.Phases...)
	return s
}

// ResetStats clears the clock and counters.
func (e *Engine) ResetStats() { e.stats = newStats() }

// AdvanceClock adds raw seconds (e.g. a migration cost) to the clock.
func (e *Engine) AdvanceClock(s float64) { e.stats.Elapsed += s }

func (e *Engine) isLocal(n *Node) bool {
	return bitmap.Intersects(e.initiator, n.Obj.CPUSet)
}

// nodeTraffic accumulates per-node phase traffic.
type nodeTraffic struct {
	node       *Node
	read       uint64 // streamed bytes after cache filtering
	write      uint64
	fills      uint64  // line-fill bytes from random misses (overlapped with their latency)
	misses     uint64  // random-read cache misses
	missWeight float64 // Σ misses/MLP, for latency time
	workingSet uint64  // bytes of the phase footprint on this node
}

// streamMissFraction returns the share of streamed traffic that
// reaches memory given the buffer size versus the LLC.
func (e *Engine) streamMissFraction(bufSize uint64) float64 {
	llc := e.m.model.Caches.LLCPerDomain
	if bufSize <= llc/2 {
		return 0.05
	}
	return 1.0
}

// randomMissRate returns the cache miss rate for irregular accesses to
// a buffer of the given size.
func (e *Engine) randomMissRate(bufSize uint64) float64 {
	llc := e.m.model.Caches.LLCPerDomain
	if bufSize == 0 {
		return 0
	}
	if bufSize <= llc/2 {
		return 0.02
	}
	r := 1.0 - float64(llc)/float64(bufSize)
	if r < 0.05 {
		r = 0.05
	}
	return r
}

// Phase executes one phase and advances the clock. Accesses touching
// freed buffers panic: that is a use-after-free in the simulated
// application. Placement is read through SegmentsSnapshot, so a
// concurrent Migrate (the daemon's advisor or rebalancer moving a
// buffer mid-run) lands between phases rather than racing one.
func (e *Engine) Phase(name string, accesses []Access) PhaseResult {
	lineSize := e.m.model.Caches.LineSize

	traffic := make(map[int]*nodeTraffic)
	get := func(n *Node) *nodeTraffic {
		t, ok := traffic[n.OSIndex()]
		if !ok {
			t = &nodeTraffic{node: n}
			traffic[n.OSIndex()] = t
		}
		return t
	}

	var totalStreamBytes float64
	var totalRandom uint64
	var extraCPU float64
	var touched []*Buffer

	for _, a := range accesses {
		extraCPU += a.CPUSeconds
		b := a.Buffer
		if b == nil {
			continue
		}
		if b.Freed() {
			panic(fmt.Sprintf("memsim: phase %q touches freed buffer %q", name, b.Name))
		}
		sf := e.streamMissFraction(b.Size)
		mr := e.randomMissRate(b.Size)
		mlp := a.MLP
		if mlp <= 0 {
			mlp = 1
		}
		b.Loads += a.ReadBytes/8 + a.RandomReads
		b.Stores += a.WriteBytes / 8
		touched = append(touched, b)
		for _, seg := range b.SegmentsSnapshot() {
			frac := 1.0
			if b.Size > 0 {
				frac = float64(seg.Bytes) / float64(b.Size)
			}
			t := get(seg.Node)
			r := uint64(float64(a.ReadBytes) * frac * sf)
			w := uint64(float64(a.WriteBytes) * frac * sf)
			misses := uint64(float64(a.RandomReads) * frac * mr)
			t.read += r
			t.write += w
			t.fills += misses * lineSize
			t.misses += misses
			t.missWeight += float64(misses) / mlp
			t.workingSet += seg.Bytes
			b.LLCMisses += (r+w)/lineSize + misses
			b.RandomMisses += misses
			seg.Node.BytesRead += r + misses*lineSize
			seg.Node.BytesWritten += w
			seg.Node.RandomReads += misses
			totalStreamBytes += float64(r + w)
			totalRandom += misses
		}
	}

	// Streamed time: each node streams concurrently; the phase is
	// bound by the slowest node. Memory-side caches absorb the part of
	// the working set that fits them.
	res := PhaseResult{Name: name, BoundNode: -1}
	var streamTime float64
	utils := make(map[int]float64)
	for _, t := range traffic {
		tt, util := e.nodeStreamTime(t)
		utils[t.node.OSIndex()] = util
		if tt > streamTime {
			streamTime = tt
			res.BoundKind = t.node.Kind()
			res.BoundNode = t.node.OSIndex()
		}
	}

	// Random (latency-bound) time: one pass with idle-ish latency to
	// estimate utilization, then a refinement pass.
	randomTime := e.randomTime(traffic, utils, 0, streamTime)
	if randomTime > 0 {
		randomTime = e.randomTime(traffic, utils, randomTime, streamTime)
	}

	cpu := e.m.model.CPUPerByte * totalStreamBytes / float64(e.threads)
	cpu += 2e-9 * float64(totalRandom) / float64(e.threads) // a few instructions per irregular access
	cpu += extraCPU

	res.StreamSeconds = streamTime
	res.RandomSeconds = randomTime
	res.CPUSeconds = cpu
	res.Seconds = streamTime + randomTime + cpu
	if streamTime > 0 {
		res.AchievedBW = totalStreamBytes / float64(1<<30) / streamTime
	}

	// Counter attribution.
	e.stats.Elapsed += res.Seconds
	e.stats.CPUSeconds += cpu
	if streamTime > 0 && res.BoundKind != "" {
		e.stats.BWBoundSeconds[res.BoundKind] += streamTime
		e.stats.StallSeconds[res.BoundKind] += streamTime * 0.8 // cores mostly stalled while saturating bandwidth
	}
	if randomTime > 0 {
		// Attribute latency stalls proportionally to each node's share
		// of miss×latency weight.
		var total float64
		shares := make(map[string]float64)
		for _, t := range traffic {
			if t.missWeight == 0 {
				continue
			}
			lat := e.nodeLatency(t, utils[t.node.OSIndex()])
			share := t.missWeight * lat
			shares[t.node.Kind()] += share
			total += share
		}
		if total > 0 {
			for kind, s := range shares {
				e.stats.StallSeconds[kind] += randomTime * (s / total)
			}
		}
	}
	e.stats.Phases = append(e.stats.Phases, res)
	for _, b := range touched {
		b.publishTelemetry()
	}
	return res
}

// nodeStreamTime computes the streamed-traffic time for one node and
// the node's bandwidth utilization.
func (e *Engine) nodeStreamTime(t *nodeTraffic) (seconds, utilization float64) {
	if t.read+t.write == 0 {
		return 0, 0
	}
	n := t.node
	model := n.Model
	rbw, wbw, tbw := model.effectiveBW(t.workingSet)

	read, write := float64(t.read), float64(t.write)

	// Memory-side cache: the fitting share of the working set is
	// served by the cache instead of the node.
	var cacheTime float64
	if mc, ok := e.m.model.MemCaches[n.OSIndex()]; ok && t.workingSet > 0 {
		hit := float64(mc.Size) / float64(t.workingSet)
		if hit > 1 {
			hit = 1
		}
		hit *= 0.85 // direct-mapped conflict losses
		cr, cw := read*hit, write*hit
		read -= cr
		write -= cw
		ctb := mc.TotalBW
		if ctb <= 0 {
			ctb = mc.ReadBW + mc.WriteBW
		}
		cacheTime = e.boundedStreamTime(cr, cw, mc.ReadBW, mc.WriteBW, ctb)
	}

	if !e.isLocal(n) {
		f := e.m.model.Remote.BWFactor
		if f <= 0 {
			f = 0.5
		}
		rbw *= f
		wbw *= f
		tbw *= f
	}
	// A few threads cannot saturate the node.
	if model.PerThreadBW > 0 {
		cap := model.PerThreadBW * float64(e.threads)
		if rbw > cap {
			rbw = cap
		}
		if wbw > cap {
			wbw = cap
		}
		if tbw > cap {
			tbw = cap
		}
	}
	nodeTime := e.boundedStreamTime(read, write, rbw, wbw, tbw)
	seconds = nodeTime + cacheTime
	if seconds > 0 {
		utilization = (float64(t.read+t.write) / float64(1<<30) / seconds) / tbw
		if utilization > 1 {
			utilization = 1
		}
	}
	return seconds, utilization
}

// boundedStreamTime applies the three-way roofline bound. Bandwidths
// are GiB/s; traffic is bytes.
func (e *Engine) boundedStreamTime(read, write, rbw, wbw, tbw float64) float64 {
	const gib = float64(1 << 30)
	var tt float64
	if read > 0 && rbw > 0 {
		if v := read / gib / rbw; v > tt {
			tt = v
		}
	}
	if write > 0 && wbw > 0 {
		if v := write / gib / wbw; v > tt {
			tt = v
		}
	}
	if read+write > 0 && tbw > 0 {
		if v := (read + write) / gib / tbw; v > tt {
			tt = v
		}
	}
	return tt
}

// nodeLatency returns the effective per-miss latency (seconds) on a
// node for the current phase.
func (e *Engine) nodeLatency(t *nodeTraffic, utilization float64) float64 {
	n := t.node
	lat := n.Model.effectiveLatency(utilization, t.workingSet)
	if mc, ok := e.m.model.MemCaches[n.OSIndex()]; ok && t.workingSet > 0 {
		hit := float64(mc.Size) / float64(t.workingSet)
		if hit > 1 {
			hit = 1
		}
		hit *= 0.85
		lat = hit*mc.Latency + (1-hit)*lat
	}
	if !e.isLocal(n) {
		add := e.m.model.Remote.LatencyAdd
		if add <= 0 {
			add = 60
		}
		lat += add
	}
	return lat * 1e-9
}

// randomTime computes the latency-bound time of the phase.
// prevEstimate (seconds) from a first pass refines node utilization
// for loaded-latency interpolation; pass 0 on the first call. The
// stream-derived utilization is weighted by the stream's share of the
// phase: a short saturated burst does not load a long random phase.
func (e *Engine) randomTime(traffic map[int]*nodeTraffic, utils map[int]float64, prevEstimate, streamTime float64) float64 {
	var total float64
	for _, t := range traffic {
		if t.missWeight == 0 {
			continue
		}
		util := utils[t.node.OSIndex()]
		rbw, _, tbw := t.node.Model.effectiveBW(t.workingSet)
		if prevEstimate > 0 {
			if streamTime+prevEstimate > 0 {
				util *= streamTime / (streamTime + prevEstimate)
			}
			// Utilization generated by the random traffic itself
			// (its line fills consume bandwidth too).
			if tbw > 0 {
				u := float64(t.fills) / float64(1<<30) / prevEstimate / tbw
				if u > util {
					util = u
				}
			}
		}
		lat := e.nodeLatency(t, util)
		nodeTime := t.missWeight * lat / float64(e.threads)
		// Bandwidth floor: however parallel the misses, their line
		// fills cannot exceed the node's read bandwidth.
		if floorBW := minPositive(rbw, tbw); floorBW > 0 {
			if floor := float64(t.fills) / float64(1<<30) / floorBW; floor > nodeTime {
				nodeTime = floor
			}
		}
		total += nodeTime
	}
	return total
}

func minPositive(a, b float64) float64 {
	switch {
	case a <= 0:
		return b
	case b <= 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}
