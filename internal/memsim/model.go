// Package memsim simulates the memory system of a heterogeneous
// machine. It is the substitute for the physical Xeon+NVDIMM and
// Knights Landing testbeds of the paper: NUMA nodes have modelled
// capacity, read/write/total bandwidth, idle latency, and (for
// non-volatile memory) an internal buffer that makes small working
// sets faster than sustained traffic, as measured by van Renen et al.
// and by the paper's own STREAM/Graph500 numbers.
//
// Applications allocate Buffers on nodes (directly or via the
// heterogeneous allocator) and describe their execution as Phases of
// Accesses (streamed bytes and/or dependent random reads). The Engine
// converts each phase into elapsed time using a roofline-style model —
// traffic/bandwidth for streams, misses×latency/MLP for irregular
// access — while maintaining the hardware counters (per-node traffic,
// per-buffer LLC misses, stall and bandwidth-bound time per memory
// kind) that the profiling layer exposes VTune-style.
//
// The model is analytical, not cycle-accurate: the paper's claims are
// about *rankings* and *crossovers* between memory kinds, which survive
// this abstraction; absolute GB/s are calibration constants.
package memsim

import "hetmem/internal/topology"

// NodeModel is the physical performance model of one NUMA node.
// Bandwidths are GiB/s, latencies nanoseconds.
type NodeModel struct {
	// Kind mirrors the topology subtype (DRAM, MCDRAM, HBM, NVDIMM,
	// NAM). Used only for counter attribution and reporting — the
	// allocation stack never branches on it.
	Kind string

	// ReadBW, WriteBW and TotalBW are sustained bandwidth limits. A
	// streamed phase is bound by max(read/ReadBW, write/WriteBW,
	// (read+write)/TotalBW).
	ReadBW, WriteBW, TotalBW float64

	// PerThreadBW caps the bandwidth a single thread can extract, so
	// that a 1-thread STREAM does not saturate the node.
	PerThreadBW float64

	// IdleLatency is the unloaded access latency.
	IdleLatency float64

	// LoadedLatency is the latency under heavy concurrent traffic. The
	// effective latency interpolates between the two with utilization.
	LoadedLatency float64

	// BufferBytes, when non-zero, models an internal device buffer
	// (e.g. Optane's write-combining/AIT caching behaviour): phases
	// whose working set on this node fits within BufferBytes run at
	// the Buffered* figures instead of the sustained ones.
	BufferBytes uint64
	// BufferedReadBW/BufferedWriteBW/BufferedTotalBW used below
	// BufferBytes. Zero values mean "same as sustained".
	BufferedReadBW, BufferedWriteBW, BufferedTotalBW float64
	// BufferedLatency used below BufferBytes (zero = IdleLatency).
	BufferedLatency float64
	// OverflowLatencyFactor multiplies latency once the working set
	// exceeds BufferBytes, modelling the AIT-miss cliff of persistent
	// memory (zero = no extra penalty).
	OverflowLatencyFactor float64

	// DegradePerTiB linearly degrades sustained bandwidth and inflates
	// latency as the phase working set grows, modelling TLB/AIT
	// pressure on very large footprints: effective = base ×
	// (1 - DegradePerTiB × workingSetTiB) for bandwidth.
	DegradePerTiB float64
}

// effectiveBW returns the (read, write, total) bandwidth for a phase
// with the given working-set footprint on the node.
func (m *NodeModel) effectiveBW(workingSet uint64) (r, w, t float64) {
	r, w, t = m.ReadBW, m.WriteBW, m.TotalBW
	if m.BufferBytes > 0 && workingSet <= m.BufferBytes {
		if m.BufferedReadBW > 0 {
			r = m.BufferedReadBW
		}
		if m.BufferedWriteBW > 0 {
			w = m.BufferedWriteBW
		}
		if m.BufferedTotalBW > 0 {
			t = m.BufferedTotalBW
		}
		return r, w, t
	}
	if m.DegradePerTiB > 0 {
		f := 1 - m.DegradePerTiB*float64(workingSet)/float64(1<<40)
		if f < 0.2 {
			f = 0.2
		}
		r *= f
		w *= f
		t *= f
	}
	return r, w, t
}

// effectiveLatency returns the access latency for a phase with the
// given utilization (0..1) and working-set footprint.
func (m *NodeModel) effectiveLatency(utilization float64, workingSet uint64) float64 {
	base := m.IdleLatency
	loaded := m.LoadedLatency
	if loaded < base {
		loaded = base
	}
	if m.BufferBytes > 0 && workingSet <= m.BufferBytes {
		if m.BufferedLatency > 0 {
			base = m.BufferedLatency
			if loaded < base {
				loaded = base
			}
		}
	} else {
		if m.BufferBytes > 0 && m.OverflowLatencyFactor > 0 {
			base *= m.OverflowLatencyFactor
			loaded *= m.OverflowLatencyFactor
		}
		if m.DegradePerTiB > 0 {
			f := 1 + m.DegradePerTiB*float64(workingSet)/float64(1<<40)
			base *= f
			loaded *= f
		}
	}
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	return base + (loaded-base)*utilization
}

// CacheModel describes the CPU cache hierarchy seen by every core, plus
// the line size used to convert misses to traffic.
type CacheModel struct {
	LineSize uint64 // bytes per cache line (64 typical)
	// L2PerCore and LLCPerDomain are capacities in bytes. The LLC
	// domain is the Group (SNC cluster) when present, else the
	// Package.
	L2PerCore    uint64
	LLCPerDomain uint64
}

// DefaultCaches returns a Xeon-like cache hierarchy.
func DefaultCaches() CacheModel {
	return CacheModel{LineSize: 64, L2PerCore: 1 << 20, LLCPerDomain: 27 << 20}
}

// MemCacheModel describes a memory-side cache in front of a node (KNL
// Cache mode MCDRAM, Xeon 2LM DRAM cache).
type MemCacheModel struct {
	Size    uint64
	ReadBW  float64
	WriteBW float64
	TotalBW float64
	Latency float64
}

// RemoteModel describes the penalty for accessing a node from an
// initiator outside its locality (e.g. across the UPI/QPI link).
type RemoteModel struct {
	// BWFactor scales bandwidth for remote accesses (e.g. 0.5).
	BWFactor float64
	// LatencyAdd is added to latency for remote accesses (ns).
	LatencyAdd float64
}

// MachineModel aggregates everything internal/platform defines about a
// machine's memory system. NodeModels is keyed by NUMA node OS index.
type MachineModel struct {
	Nodes      map[int]NodeModel
	MemCaches  map[int]MemCacheModel // keyed by the OS index of the *cached* node
	Caches     CacheModel
	Remote     RemoteModel
	FreqGHz    float64 // core frequency, for clocktick accounting
	CPUPerByte float64 // seconds of pure CPU work per byte of streamed kernel traffic (models the non-memory part of kernels)
}

// KindOf returns the memory kind string for a node object.
func KindOf(n *topology.Object) string {
	if n.Subtype != "" {
		return n.Subtype
	}
	return "DRAM"
}

// IsPMem reports whether a kind is persistent memory for counter
// attribution (VTune's "PMem Bound").
func IsPMem(kind string) bool { return kind == "NVDIMM" || kind == "PMEM" }

// IsHighBandwidth reports whether a kind is an HBM-class memory.
func IsHighBandwidth(kind string) bool { return kind == "HBM" || kind == "MCDRAM" }
