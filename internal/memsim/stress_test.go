package memsim

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestConcurrentAllocFree hammers the machine's allocation accounting
// from many goroutines; the mutex must keep it consistent and the
// final state must be empty.
func TestConcurrentAllocFree(t *testing.T) {
	m, _ := testRig(t)
	node := m.NodeByOS(0)
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				size := uint64(r.Intn(1<<20) + 1)
				b, err := m.Alloc("b", size, node)
				if err != nil {
					continue
				}
				if r.Intn(4) == 0 {
					m.Migrate(b, m.NodeByOS(1))
				}
				m.Free(b)
			}
		}()
	}
	wg.Wait()
	for _, n := range m.Nodes() {
		if n.Allocated() != 0 {
			t.Fatalf("node %v leaked %d bytes", n.Obj, n.Allocated())
		}
	}
	if len(m.Buffers()) != 0 {
		t.Fatalf("%d buffers leaked", len(m.Buffers()))
	}
}

// TestDeterminism: the model must be bit-for-bit reproducible — the
// basis of trace replay equivalence.
func TestDeterminism(t *testing.T) {
	run := func() float64 {
		m, _ := testRig(t)
		e := NewEngine(m, pkg0Set())
		a, _ := m.Alloc("a", 10*gb, m.NodeByOS(0))
		g, _ := m.Alloc("g", 10*gb, m.NodeByOS(1))
		e.Phase("p1", []Access{
			{Buffer: a, ReadBytes: 30 * gb, WriteBytes: 5 * gb},
			{Buffer: g, RandomReads: 12_345_678, MLP: 3},
		})
		e.Phase("p2", []Access{{Buffer: g, ReadBytes: 7 * gb}})
		return e.Elapsed()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic engine: %v != %v", a, b)
	}
}

func TestEmptyPhase(t *testing.T) {
	m, _ := testRig(t)
	e := NewEngine(m, pkg0Set())
	res := e.Phase("empty", nil)
	if res.Seconds != 0 || res.BoundKind != "" || res.BoundNode != -1 {
		t.Fatalf("empty phase = %+v", res)
	}
	// Nil buffers are skipped; pure CPU accesses still cost time.
	res = e.Phase("cpu-only", []Access{{CPUSeconds: 0.5}})
	if res.Seconds != 0.5 || res.CPUSeconds != 0.5 {
		t.Fatalf("cpu-only phase = %+v", res)
	}
}

func TestQuickLatencyMonotoneInUtilization(t *testing.T) {
	model := NodeModel{IdleLatency: 100, LoadedLatency: 400}
	f := func(a, b uint8) bool {
		u1 := float64(a%101) / 100
		u2 := float64(b%101) / 100
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		return model.effectiveLatency(u1, 1<<30) <= model.effectiveLatency(u2, 1<<30)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Out-of-range utilization clamps instead of extrapolating.
	if model.effectiveLatency(-3, 0) != 100 || model.effectiveLatency(9, 0) != 400 {
		t.Fatal("utilization clamping broken")
	}
}

func TestQuickBandwidthMonotoneInWorkingSet(t *testing.T) {
	model := NodeModel{
		ReadBW: 30, WriteBW: 4, TotalBW: 26,
		BufferBytes: 32 * gb, BufferedReadBW: 60, BufferedWriteBW: 13, BufferedTotalBW: 35,
		DegradePerTiB: 0.7,
	}
	f := func(a, b uint16) bool {
		w1 := uint64(a) << 28 // up to ~16 TiB
		w2 := uint64(b) << 28
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		_, _, t1 := model.effectiveBW(w1)
		_, _, t2 := model.effectiveBW(w2)
		return t1 >= t2 // bigger working set is never faster
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// The degrade floor: bandwidth never collapses below 20% of base.
	_, _, tt := model.effectiveBW(1 << 45)
	if tt < 26*0.2-1e-9 {
		t.Fatalf("degrade floor broken: %f", tt)
	}
}

func TestQuickOverflowLatencyKicksIn(t *testing.T) {
	model := NodeModel{
		IdleLatency: 300, LoadedLatency: 800,
		BufferBytes: 32 * gb, OverflowLatencyFactor: 2,
	}
	below := model.effectiveLatency(0, 31*gb)
	above := model.effectiveLatency(0, 33*gb)
	if below != 300 || above != 600 {
		t.Fatalf("overflow latency: below=%f above=%f", below, above)
	}
}

// TestSplitBufferTrafficProportional: a buffer split across two nodes
// spreads its traffic by segment size; the phase is bound by the
// slower share.
func TestSplitBufferTrafficProportional(t *testing.T) {
	m, _ := testRig(t)
	dram, nv := m.NodeByOS(0), m.NodeByOS(1)
	b, err := m.AllocSplit("split", []Segment{{dram, 30 * gb}, {nv, 10 * gb}})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m, pkg0Set())
	e.Phase("s", []Access{{Buffer: b, ReadBytes: 40 * gb}})
	// 3/4 of the traffic on DRAM, 1/4 on NVDIMM (± rounding).
	if dram.BytesRead < 29*gb || dram.BytesRead > 31*gb {
		t.Fatalf("DRAM share = %d", dram.BytesRead)
	}
	if nv.BytesRead < 9*gb || nv.BytesRead > 11*gb {
		t.Fatalf("NVDIMM share = %d", nv.BytesRead)
	}
	// Nodes stream concurrently, so for *bandwidth* the split
	// aggregates the two memories and beats pure DRAM — the very
	// reason the interleave policy exists.
	b2, _ := m.Alloc("pure", 40*gb, dram)
	e2 := NewEngine(m, pkg0Set())
	pureStream := e2.Phase("s", []Access{{Buffer: b2, ReadBytes: 40 * gb}})
	e3 := NewEngine(m, pkg0Set())
	splitStream := e3.Phase("s", []Access{{Buffer: b, ReadBytes: 40 * gb}})
	if splitStream.Seconds >= pureStream.Seconds {
		t.Fatalf("split stream %.3f should aggregate bandwidth vs pure DRAM %.3f",
			splitStream.Seconds, pureStream.Seconds)
	}
	// For *latency* the split drags: a quarter of the random misses
	// pay the NVDIMM latency — the paper's warning about partial
	// allocations causing irregular performance.
	e4 := NewEngine(m, pkg0Set())
	pureRand := e4.Phase("r", []Access{{Buffer: b2, RandomReads: 50_000_000, MLP: 4}})
	e5 := NewEngine(m, pkg0Set())
	splitRand := e5.Phase("r", []Access{{Buffer: b, RandomReads: 50_000_000, MLP: 4}})
	if splitRand.Seconds <= pureRand.Seconds {
		t.Fatalf("split random %.3f should be slower than pure DRAM %.3f",
			splitRand.Seconds, pureRand.Seconds)
	}
}

// TestSharedMachineCapacityPressure: two engines (two "jobs") share
// one machine; the second job sees only what the first left — the
// available-capacity consideration of paper Section III-B3.
func TestSharedMachineCapacityPressure(t *testing.T) {
	m, _ := testRig(t)
	dram := m.NodeByOS(0)
	if _, err := m.Alloc("job1", 90*gb, dram); err != nil {
		t.Fatal(err)
	}
	if dram.Available() != 6*gb {
		t.Fatalf("available = %d", dram.Available())
	}
	if _, err := m.Alloc("job2", 10*gb, dram); err == nil {
		t.Fatal("job2 should not fit")
	}
	if _, err := m.Alloc("job2", 6*gb, dram); err != nil {
		t.Fatal(err)
	}
}
