package memsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hetmem/internal/bitmap"
	"hetmem/internal/topology"
)

const gb = 1 << 30

// testRig builds a 2-package machine. Package 0: DRAM(0, 96G) +
// NVDIMM(1, 768G); package 1: DRAM(2, 96G). 4 cores × 1 PU per package.
func testRig(t testing.TB) (*Machine, *topology.Topology) {
	t.Helper()
	root := topology.New(topology.Machine, -1)
	pu := 0
	p0 := root.AddChild(topology.New(topology.Package, 0))
	p0.AddMemChild(topology.NewNUMA(0, "DRAM", 96*gb))
	p0.AddMemChild(topology.NewNUMA(1, "NVDIMM", 768*gb))
	p1 := root.AddChild(topology.New(topology.Package, 1))
	p1.AddMemChild(topology.NewNUMA(2, "DRAM", 96*gb))
	for _, pkg := range []*topology.Object{p0, p1} {
		for c := 0; c < 4; c++ {
			pkg.AddChild(topology.New(topology.Core, pu)).AddChild(topology.New(topology.PU, pu))
			pu++
		}
	}
	topo, err := topology.Build(root)
	if err != nil {
		t.Fatal(err)
	}
	dram := NodeModel{
		Kind: "DRAM", ReadBW: 105, WriteBW: 45, TotalBW: 75, PerThreadBW: 12,
		IdleLatency: 81, LoadedLatency: 200,
	}
	nvdimm := NodeModel{
		Kind: "NVDIMM", ReadBW: 30, WriteBW: 3.3, TotalBW: 25, PerThreadBW: 6,
		IdleLatency: 305, LoadedLatency: 900,
		BufferBytes: 32 * gb, BufferedReadBW: 60, BufferedWriteBW: 12, BufferedTotalBW: 32,
		BufferedLatency: 290,
	}
	m, err := NewMachine(topo, MachineModel{
		Nodes:  map[int]NodeModel{0: dram, 1: nvdimm, 2: dram},
		Caches: CacheModel{LineSize: 64, L2PerCore: 1 << 20, LLCPerDomain: 27 << 20},
		Remote: RemoteModel{BWFactor: 0.5, LatencyAdd: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, topo
}

func pkg0Set() *bitmap.Bitmap { return bitmap.NewFromRange(0, 3) }

func TestNewMachineMissingModel(t *testing.T) {
	root := topology.New(topology.Machine, -1)
	root.AddMemChild(topology.NewNUMA(0, "DRAM", gb))
	root.AddChild(topology.New(topology.PU, 0))
	topo, err := topology.Build(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(topo, MachineModel{Nodes: map[int]NodeModel{}}); !errors.Is(err, ErrNoModel) {
		t.Fatalf("err = %v, want ErrNoModel", err)
	}
}

func TestAllocFreeAccounting(t *testing.T) {
	m, _ := testRig(t)
	dram := m.NodeByOS(0)
	if dram.Available() != 96*gb {
		t.Fatalf("initial available = %d", dram.Available())
	}
	b, err := m.Alloc("x", 10*gb, dram)
	if err != nil {
		t.Fatal(err)
	}
	if dram.Allocated() != 10*gb || dram.Available() != 86*gb {
		t.Fatalf("after alloc: allocated=%d available=%d", dram.Allocated(), dram.Available())
	}
	if b.NodeNames() != "DRAM#0" {
		t.Fatalf("NodeNames = %q", b.NodeNames())
	}
	if len(m.Buffers()) != 1 {
		t.Fatal("Buffers should list the live buffer")
	}
	if err := m.Free(b); err != nil {
		t.Fatal(err)
	}
	if dram.Allocated() != 0 {
		t.Fatalf("after free: allocated=%d", dram.Allocated())
	}
	if err := m.Free(b); !errors.Is(err, ErrFreed) {
		t.Fatalf("double free err = %v", err)
	}
	if len(m.Buffers()) != 0 {
		t.Fatal("freed buffer still listed")
	}
}

func TestAllocCapacityExhausted(t *testing.T) {
	m, _ := testRig(t)
	dram := m.NodeByOS(0)
	if _, err := m.Alloc("big", 97*gb, dram); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	// A failed alloc must not leak accounting.
	if dram.Allocated() != 0 {
		t.Fatalf("allocated = %d after failed alloc", dram.Allocated())
	}
}

func TestAllocSplitAndInterleave(t *testing.T) {
	m, _ := testRig(t)
	dram, nv := m.NodeByOS(0), m.NodeByOS(1)
	b, err := m.AllocSplit("hybrid", []Segment{{dram, 4 * gb}, {nv, 12 * gb}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Size != 16*gb || b.NodeNames() != "DRAM#0+NVDIMM#1" {
		t.Fatalf("split = %d %q", b.Size, b.NodeNames())
	}
	if !b.OnKind("NVDIMM") || b.OnKind("HBM") {
		t.Fatal("OnKind wrong")
	}
	// All-or-nothing: second part too big -> nothing allocated.
	before := dram.Allocated()
	if _, err := m.AllocSplit("bad", []Segment{{dram, gb}, {nv, 10000 * gb}}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v", err)
	}
	if dram.Allocated() != before {
		t.Fatal("failed split leaked accounting")
	}

	il, err := m.AllocInterleave("il", 10*gb, []*Node{dram, nv})
	if err != nil {
		t.Fatal(err)
	}
	if len(il.Segments) != 2 || il.Segments[0].Bytes != 5*gb || il.Segments[1].Bytes != 5*gb {
		t.Fatalf("interleave segments = %+v", il.Segments)
	}
	if _, err := m.AllocInterleave("none", gb, nil); err == nil {
		t.Fatal("interleave across zero nodes should fail")
	}
}

func TestMigrate(t *testing.T) {
	m, _ := testRig(t)
	dram, nv := m.NodeByOS(0), m.NodeByOS(1)
	b, err := m.Alloc("buf", 8*gb, nv)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := m.Migrate(b, dram)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("migration should cost time")
	}
	// Copying 8GB at ~30GB/s plus per-page cost: must exceed the raw
	// copy time (the paper stresses OS migration overhead).
	raw := 8.0 / 30.0
	if cost <= raw {
		t.Fatalf("cost %.3f should exceed raw copy %.3f", cost, raw)
	}
	if nv.Allocated() != 0 || dram.Allocated() != 8*gb {
		t.Fatal("migration did not move accounting")
	}
	if b.NodeNames() != "DRAM#0" {
		t.Fatalf("NodeNames = %q", b.NodeNames())
	}
	// Migrating to a full node fails.
	if _, err := m.Alloc("fill", 88*gb, dram); err != nil {
		t.Fatal(err)
	}
	b2, _ := m.Alloc("other", 8*gb, nv)
	if _, err := m.Migrate(b2, dram); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v", err)
	}
	// Migrating in place is free.
	cost, err = m.Migrate(b, dram)
	if err != nil || cost != 0 {
		t.Fatalf("in-place migrate = %.3f, %v", cost, err)
	}
}

func TestStreamDRAMvsNVDIMM(t *testing.T) {
	m, _ := testRig(t)
	ini := pkg0Set()
	size := uint64(40 * gb)

	run := func(node *Node) float64 {
		e := NewEngine(m, ini)
		b, err := m.Alloc("a", size, node)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Free(b)
		res := e.Phase("stream", []Access{{Buffer: b, ReadBytes: size, WriteBytes: size / 2}})
		if res.AchievedBW <= 0 {
			t.Fatal("no achieved bandwidth")
		}
		return res.AchievedBW
	}
	dbw := run(m.NodeByOS(0))
	nbw := run(m.NodeByOS(1))
	if dbw <= nbw {
		t.Fatalf("DRAM bw %.1f should beat NVDIMM bw %.1f", dbw, nbw)
	}
	if ratio := dbw / nbw; ratio < 2 || ratio > 12 {
		t.Fatalf("DRAM/NVDIMM stream ratio %.2f out of plausible range", ratio)
	}
	// DRAM achieved should approach but not exceed its TotalBW.
	if dbw > 75.01 || dbw < 40 {
		t.Fatalf("DRAM achieved %.1f implausible vs TotalBW 75", dbw)
	}
}

func TestNVDIMMBufferedSmallWorkingSet(t *testing.T) {
	m, _ := testRig(t)
	ini := pkg0Set()
	nv := m.NodeByOS(1)

	run := func(size uint64) float64 {
		e := NewEngine(m, ini)
		b, err := m.Alloc("a", size, nv)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Free(b)
		res := e.Phase("stream", []Access{{Buffer: b, ReadBytes: size * 2, WriteBytes: size}})
		return res.AchievedBW
	}
	small := run(20 * gb)  // fits the 32GB device buffer
	large := run(100 * gb) // sustained
	if small <= large*1.5 {
		t.Fatalf("buffered bw %.1f should clearly beat sustained %.1f", small, large)
	}
}

func TestRandomLatencyBound(t *testing.T) {
	m, _ := testRig(t)
	ini := pkg0Set()
	const n = 50_000_000

	run := func(node *Node) float64 {
		e := NewEngine(m, ini)
		b, err := m.Alloc("graph", 8*gb, node)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Free(b)
		res := e.Phase("bfs", []Access{{Buffer: b, RandomReads: n, MLP: 4}})
		if res.RandomSeconds <= 0 || res.StreamSeconds != 0 {
			t.Fatalf("decomposition wrong: %+v", res)
		}
		return res.Seconds
	}
	dt := run(m.NodeByOS(0))
	nt := run(m.NodeByOS(1))
	if nt <= dt {
		t.Fatalf("NVDIMM random time %.3f should exceed DRAM %.3f", nt, dt)
	}
	ratio := nt / dt
	if ratio < 1.5 || ratio > 8 {
		t.Fatalf("NVDIMM/DRAM latency ratio %.2f out of plausible range", ratio)
	}
}

func TestMLPAndThreadsScaling(t *testing.T) {
	m, _ := testRig(t)
	node := m.NodeByOS(0)
	b, err := m.Alloc("g", 8*gb, node)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10_000_000

	run := func(threads int, mlp float64) float64 {
		e := NewEngine(m, pkg0Set())
		e.SetThreads(threads)
		return e.Phase("r", []Access{{Buffer: b, RandomReads: n, MLP: mlp}}).Seconds
	}
	t1 := run(1, 1)
	t4 := run(4, 1)
	tm := run(1, 4)
	if t4 >= t1 || tm >= t1 {
		t.Fatalf("threads/MLP should speed up random access: t1=%.3f t4=%.3f tm=%.3f", t1, t4, tm)
	}
	if math.Abs(t4-tm)/t1 > 0.3 {
		t.Fatalf("4 threads and MLP 4 should be comparable: %.3f vs %.3f", t4, tm)
	}
}

func TestSmallBufferCached(t *testing.T) {
	m, _ := testRig(t)
	e := NewEngine(m, pkg0Set())
	node := m.NodeByOS(0)
	small, _ := m.Alloc("small", 4<<20, node) // fits LLC
	big, _ := m.Alloc("big", 8*gb, node)
	const n = 1_000_000
	ts := e.Phase("s", []Access{{Buffer: small, RandomReads: n}}).Seconds
	tb := e.Phase("b", []Access{{Buffer: big, RandomReads: n}}).Seconds
	if ts >= tb/5 {
		t.Fatalf("LLC-resident random access %.5f should be far faster than %.5f", ts, tb)
	}
}

func TestRemoteAccessSlower(t *testing.T) {
	m, _ := testRig(t)
	size := uint64(40 * gb)
	dram0 := m.NodeByOS(0) // local to pkg0
	dram2 := m.NodeByOS(2) // remote from pkg0

	run := func(node *Node) (float64, float64) {
		e := NewEngine(m, pkg0Set())
		b, _ := m.Alloc("a", size, node)
		defer m.Free(b)
		st := e.Phase("s", []Access{{Buffer: b, ReadBytes: size}}).Seconds
		rt := e.Phase("r", []Access{{Buffer: b, RandomReads: 10_000_000}}).Seconds
		return st, rt
	}
	ls, lr := run(dram0)
	rs, rr := run(dram2)
	if rs <= ls {
		t.Fatalf("remote stream %.3f should be slower than local %.3f", rs, ls)
	}
	if rr <= lr {
		t.Fatalf("remote random %.4f should be slower than local %.4f", rr, lr)
	}
}

func TestMemorySideCache(t *testing.T) {
	// A DRAM node fronted by a fast 16GB memory-side cache.
	root := topology.New(topology.Machine, -1)
	pkg := root.AddChild(topology.New(topology.Package, 0))
	msc := pkg.AddMemChild(topology.NewMemCache(16 * gb))
	msc.AddMemChild(topology.NewNUMA(0, "DRAM", 96*gb))
	for c := 0; c < 4; c++ {
		pkg.AddChild(topology.New(topology.Core, c)).AddChild(topology.New(topology.PU, c))
	}
	topo, err := topology.Build(root)
	if err != nil {
		t.Fatal(err)
	}
	dram := NodeModel{Kind: "DRAM", ReadBW: 20, WriteBW: 10, TotalBW: 18, IdleLatency: 130, LoadedLatency: 250}
	mcModel := MemCacheModel{Size: 16 * gb, ReadBW: 300, WriteBW: 200, TotalBW: 320, Latency: 120}

	mkMachine := func(withCache bool) *Machine {
		mm := MachineModel{Nodes: map[int]NodeModel{0: dram}}
		if withCache {
			mm.MemCaches = map[int]MemCacheModel{0: mcModel}
		}
		m, err := NewMachine(topo, mm)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	run := func(m *Machine, size uint64) float64 {
		e := NewEngine(m, bitmap.NewFromRange(0, 3))
		b, _ := m.Alloc("a", size, m.NodeByOS(0))
		defer m.Free(b)
		return e.Phase("s", []Access{{Buffer: b, ReadBytes: size * 4}}).AchievedBW
	}
	plain := run(mkMachine(false), 8*gb)
	cachedFit := run(mkMachine(true), 8*gb)    // fits the cache
	cachedSpill := run(mkMachine(true), 64*gb) // mostly misses
	if cachedFit <= plain*2 {
		t.Fatalf("fitting working set should be much faster with memory-side cache: %.1f vs %.1f", cachedFit, plain)
	}
	if cachedSpill >= cachedFit/2 {
		t.Fatalf("spilling working set %.1f should be much slower than fitting %.1f", cachedSpill, cachedFit)
	}
}

func TestCountersAndStats(t *testing.T) {
	m, _ := testRig(t)
	e := NewEngine(m, pkg0Set())
	dram := m.NodeByOS(0)
	nv := m.NodeByOS(1)
	a, _ := m.Alloc("a", 40*gb, dram)
	g, _ := m.Alloc("g", 40*gb, nv)

	e.Phase("mix", []Access{
		{Buffer: a, ReadBytes: 40 * gb, WriteBytes: 10 * gb},
		{Buffer: g, RandomReads: 30_000_000},
	})
	if dram.BytesRead < 40*gb || dram.BytesWritten < 10*gb {
		t.Fatalf("DRAM counters: read=%d written=%d", dram.BytesRead, dram.BytesWritten)
	}
	if nv.RandomReads == 0 || nv.BytesRead == 0 {
		t.Fatal("NVDIMM random counters empty")
	}
	if a.LLCMisses == 0 || g.LLCMisses == 0 {
		t.Fatal("per-buffer LLC miss counters empty")
	}
	if a.Loads == 0 || a.Stores == 0 || g.Loads == 0 {
		t.Fatal("per-buffer load/store counters empty")
	}

	st := e.Stats()
	if st.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if st.BWBoundSeconds["DRAM"] <= 0 {
		t.Fatal("DRAM bandwidth-bound time missing")
	}
	if st.StallSeconds["NVDIMM"] <= 0 {
		t.Fatal("NVDIMM stall time missing")
	}
	if len(st.Phases) != 1 || st.Phases[0].Name != "mix" {
		t.Fatalf("phases = %+v", st.Phases)
	}

	// Stats() must be a snapshot: mutating it must not affect the engine.
	st.StallSeconds["DRAM"] = 1e9
	if e.Stats().StallSeconds["DRAM"] == 1e9 {
		t.Fatal("Stats leaked internal map")
	}

	m.ResetCounters()
	if dram.BytesRead != 0 || a.LLCMisses != 0 {
		t.Fatal("ResetCounters incomplete")
	}
	e.ResetStats()
	if e.Elapsed() != 0 || len(e.Stats().Phases) != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestPhaseOnFreedBufferPanics(t *testing.T) {
	m, _ := testRig(t)
	e := NewEngine(m, pkg0Set())
	b, _ := m.Alloc("a", gb, m.NodeByOS(0))
	m.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("phase on freed buffer should panic")
		}
	}()
	e.Phase("uaf", []Access{{Buffer: b, ReadBytes: gb}})
}

func TestAdvanceClock(t *testing.T) {
	m, _ := testRig(t)
	e := NewEngine(m, pkg0Set())
	e.AdvanceClock(1.5)
	if e.Elapsed() != 1.5 {
		t.Fatalf("Elapsed = %f", e.Elapsed())
	}
}

func TestQuickMoreTrafficMoreTime(t *testing.T) {
	m, _ := testRig(t)
	node := m.NodeByOS(0)
	b, err := m.Alloc("a", 40*gb, node)
	if err != nil {
		t.Fatal(err)
	}
	f := func(k uint8) bool {
		size := (uint64(k%16) + 1) * gb
		e1 := NewEngine(m, pkg0Set())
		t1 := e1.Phase("p", []Access{{Buffer: b, ReadBytes: size}}).Seconds
		e2 := NewEngine(m, pkg0Set())
		t2 := e2.Phase("p", []Access{{Buffer: b, ReadBytes: size * 2}}).Seconds
		return t2 > t1 && t1 > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllocNeverExceedsCapacity(t *testing.T) {
	f := func(sizes []uint32) bool {
		m, _ := testRig(t)
		node := m.NodeByOS(0)
		var want uint64
		for i, s := range sizes {
			sz := uint64(s) * 1024
			if _, err := m.Alloc("b", sz, node); err == nil {
				want += sz
			} else if !errors.Is(err, ErrNoCapacity) {
				return false
			}
			if node.Allocated() != want || node.Allocated() > node.Capacity() {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
