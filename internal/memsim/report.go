package memsim

import (
	"fmt"
	"sort"
	"strings"

	"hetmem/internal/topology"
)

// UsageRow summarizes one node's state for reporting.
type UsageRow struct {
	Node         *Node
	Capacity     uint64
	Allocated    uint64
	Available    uint64
	BytesRead    uint64
	BytesWritten uint64
	RandomReads  uint64
}

// Usage snapshots every node, ordered by OS index.
func (m *Machine) Usage() []UsageRow {
	rows := make([]UsageRow, 0, len(m.nodes))
	for _, n := range m.nodes {
		alloc := n.Allocated()
		rows = append(rows, UsageRow{
			Node:         n,
			Capacity:     n.Capacity(),
			Allocated:    alloc,
			Available:    n.Capacity() - alloc,
			BytesRead:    n.BytesRead,
			BytesWritten: n.BytesWritten,
			RandomReads:  n.RandomReads,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Node.OSIndex() < rows[j].Node.OSIndex() })
	return rows
}

// RenderUsage formats a numastat-like view of the machine: capacity,
// allocation and traffic per node, plus the live buffers.
func (m *Machine) RenderUsage() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-8s %10s %10s %10s %12s %12s %12s\n",
		"Node", "Kind", "Capacity", "Allocated", "Available", "Read", "Written", "RandomReads")
	for _, r := range m.Usage() {
		fmt.Fprintf(&sb, "P#%-8d %-8s %10s %10s %10s %12s %12s %12d\n",
			r.Node.OSIndex(), r.Node.Kind(),
			topology.FormatBytes(r.Capacity), topology.FormatBytes(r.Allocated), topology.FormatBytes(r.Available),
			topology.FormatBytes(r.BytesRead), topology.FormatBytes(r.BytesWritten), r.RandomReads)
	}
	bufs := m.Buffers()
	if len(bufs) > 0 {
		sb.WriteString("\nlive buffers:\n")
		for _, b := range bufs {
			fmt.Fprintf(&sb, "  %-16s %10s on %s\n", b.Name, topology.FormatBytes(b.Size), b.NodeNames())
		}
	}
	return sb.String()
}
