package memsim_test

import (
	"errors"
	"testing"

	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

func faultMachine(t *testing.T) *memsim.Machine {
	t.Helper()
	p, err := platform.Get("xeon")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOfflineNodeRejectsAllocAllowsFree(t *testing.T) {
	m := faultMachine(t)
	n := m.Nodes()[0]

	buf, err := m.Alloc("victim", 1<<20, n)
	if err != nil {
		t.Fatal(err)
	}

	n.SetOffline(true)
	if !n.Offline() {
		t.Fatal("node not offline after SetOffline(true)")
	}
	if n.Available() != 0 {
		t.Fatalf("offline node reports %d available, want 0", n.Available())
	}
	if _, err := m.Alloc("x", 1<<20, n); !errors.Is(err, memsim.ErrNodeOffline) {
		t.Fatalf("alloc on offline node: %v, want ErrNodeOffline", err)
	}
	// Freeing memory on a dead node must still work (evacuation path).
	if err := m.Free(buf); err != nil {
		t.Fatalf("free on offline node: %v", err)
	}
	if got := n.Allocated(); got != 0 {
		t.Fatalf("allocated = %d after free, want 0", got)
	}

	n.SetOffline(false)
	if _, err := m.Alloc("y", 1<<20, n); err != nil {
		t.Fatalf("alloc after recovery: %v", err)
	}
}

func TestCapacityShrink(t *testing.T) {
	m := faultMachine(t)
	n := m.Nodes()[0]

	buf, err := m.Alloc("base", 1<<30, n)
	if err != nil {
		t.Fatal(err)
	}

	// Shrink below current usage: nothing new fits, existing stays.
	n.SetCapacityLimit(1 << 20)
	if got := n.EffectiveCapacity(); got != 1<<20 {
		t.Fatalf("effective capacity = %d, want %d", got, 1<<20)
	}
	if n.Available() != 0 {
		t.Fatalf("available = %d over a shrunk node, want 0", n.Available())
	}
	if _, err := m.Alloc("x", 1, n); !errors.Is(err, memsim.ErrNoCapacity) {
		t.Fatalf("alloc on shrunk node: %v, want ErrNoCapacity", err)
	}
	if got := n.Allocated(); got != 1<<30 {
		t.Fatalf("allocated = %d after shrink, want %d", got, uint64(1)<<30)
	}

	// Restore: the full capacity is back.
	n.SetCapacityLimit(0)
	if got := n.EffectiveCapacity(); got != n.Capacity() {
		t.Fatalf("effective capacity = %d after restore, want %d", got, n.Capacity())
	}
	if err := m.Free(buf); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedTransientFailures(t *testing.T) {
	m := faultMachine(t)
	n := m.Nodes()[0]

	n.InjectAllocFailures(2)
	for i := 0; i < 2; i++ {
		if _, err := m.Alloc("x", 1<<20, n); !errors.Is(err, memsim.ErrTransient) {
			t.Fatalf("attempt %d: %v, want ErrTransient", i, err)
		}
	}
	// Faults drained: the next attempt succeeds.
	if _, err := m.Alloc("x", 1<<20, n); err != nil {
		t.Fatalf("alloc after faults drained: %v", err)
	}
}

func TestPerfFactorsDegradeMigrationCost(t *testing.T) {
	m := faultMachine(t)
	nodes := m.Nodes()
	src, dst := nodes[0], nodes[1]

	buf, err := m.Alloc("mover", 1<<30, src)
	if err != nil {
		t.Fatal(err)
	}
	nominal := m.MigrationCost(buf, dst)

	src.SetPerfFactors(0.25, 4)
	if !src.Degraded() {
		t.Fatal("node not degraded after SetPerfFactors")
	}
	degraded := m.MigrationCost(buf, dst)
	if degraded <= nominal {
		t.Fatalf("degraded migration cost %g not above nominal %g", degraded, nominal)
	}

	src.SetPerfFactors(0, 0) // reset
	if src.Degraded() {
		t.Fatal("node still degraded after reset")
	}
	if got := m.MigrationCost(buf, dst); got != nominal {
		t.Fatalf("cost after reset = %g, want %g", got, nominal)
	}
}

// TestGenerationBumpsOnFaultState: every placement-relevant fault
// setter must advance the machine's placement generation (the
// allocator's candidate cache keys on it), while plain alloc/free
// traffic must not.
func TestGenerationBumpsOnFaultState(t *testing.T) {
	m := faultMachine(t)
	n := m.Nodes()[0]
	g := m.Generation()

	n.SetOffline(true)
	if m.Generation() <= g {
		t.Fatalf("SetOffline did not bump the generation")
	}
	g = m.Generation()
	n.SetOffline(false)
	if m.Generation() <= g {
		t.Fatalf("clearing offline did not bump the generation")
	}
	g = m.Generation()
	n.SetCapacityLimit(1 << 30)
	if m.Generation() <= g {
		t.Fatalf("SetCapacityLimit did not bump the generation")
	}
	g = m.Generation()
	n.SetPerfFactors(0.5, 2)
	if m.Generation() <= g {
		t.Fatalf("SetPerfFactors did not bump the generation")
	}

	// Byte-level use is not a ranking input: alloc/free must not
	// invalidate cached rankings.
	g = m.Generation()
	buf, err := m.Alloc("gen", 1<<20, m.Nodes()[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(buf); err != nil {
		t.Fatal(err)
	}
	if m.Generation() != g {
		t.Fatalf("alloc/free moved the generation from %d to %d", g, m.Generation())
	}

	g = m.Generation()
	m.BumpGeneration()
	if m.Generation() != g+1 {
		t.Fatalf("BumpGeneration: got %d, want %d", m.Generation(), g+1)
	}
}
