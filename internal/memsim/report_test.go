package memsim

import (
	"strings"
	"testing"
)

func TestUsageAndRender(t *testing.T) {
	m, _ := testRig(t)
	b, err := m.Alloc("workset", 10*gb, m.NodeByOS(0))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m, pkg0Set())
	e.Phase("p", []Access{{Buffer: b, ReadBytes: 5 * gb, RandomReads: 1000000}})

	rows := m.Usage()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Allocated != 10*gb || rows[0].Available != 86*gb {
		t.Fatalf("row0 = %+v", rows[0])
	}
	if rows[0].BytesRead == 0 || rows[0].RandomReads == 0 {
		t.Fatal("traffic counters missing from usage")
	}
	if rows[1].Allocated != 0 {
		t.Fatalf("row1 allocated = %d", rows[1].Allocated)
	}

	out := m.RenderUsage()
	for _, want := range []string{"P#0", "DRAM", "NVDIMM", "10GB", "86GB", "live buffers:", "workset"} {
		if !strings.Contains(out, want) {
			t.Errorf("usage render missing %q:\n%s", want, out)
		}
	}
	m.Free(b)
	if strings.Contains(m.RenderUsage(), "live buffers:") {
		t.Error("freed buffer still listed")
	}
}
