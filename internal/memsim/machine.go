package memsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hetmem/internal/topology"
)

// Errors returned by allocation.
var (
	ErrNoCapacity = errors.New("memsim: node capacity exhausted")
	ErrNoModel    = errors.New("memsim: node has no performance model")
	ErrFreed      = errors.New("memsim: buffer already freed")
	// ErrNodeOffline means the node is administratively or fault-wise
	// down: no new reservations are admitted, but releases (frees,
	// evacuation migrations) still succeed so live data can leave.
	ErrNodeOffline = errors.New("memsim: node offline")
	// ErrTransient is an injected transient allocation fault (a DIMM
	// hiccup, an EDAC event): the request failed but the node is fine,
	// so the caller should retry rather than fall down the ranking.
	ErrTransient = errors.New("memsim: transient allocation fault")
)

// Node is the runtime state of one NUMA node: its model plus capacity
// accounting and traffic counters.
//
// Capacity accounting is guarded by a per-node lock, so concurrent
// allocations targeting different nodes never contend with each other —
// the sharding that lets one Machine serve many placement clients (see
// internal/server). The traffic counters are owned by the engine, which
// remains a single-threaded simulation.
type Node struct {
	Obj   *topology.Object
	Model NodeModel

	// gen points at the owning machine's placement generation; fault
	// setters bump it so ranked-candidate caches above (internal/alloc)
	// know the machine's placement inputs changed. Nil for a Node built
	// outside NewMachine.
	gen *atomic.Uint64

	// label caches the "KIND#os" rendering — both parts are immutable,
	// and the placement daemon stamps it on every response. Empty for a
	// Node built outside NewMachine.
	label string

	mu        sync.Mutex // guards allocated and the fault state below
	allocated uint64

	// Fault-injection state (see internal/faults). All of it is guarded
	// by mu, like the capacity accounting it perturbs.
	offline   bool
	capLimit  uint64  // 0 = full capacity; otherwise an injected shrink
	bwFactor  float64 // 0 or 1 = nominal; <1 = degraded bandwidth
	latFactor float64 // 0 or 1 = nominal; >1 = degraded latency
	failNext  uint64  // pending injected transient alloc failures

	// Counters, accumulated by the engine.
	BytesRead    uint64
	BytesWritten uint64
	RandomReads  uint64
}

// OSIndex returns the node's OS index.
func (n *Node) OSIndex() int { return n.Obj.OSIndex }

// Capacity returns the node capacity in bytes.
func (n *Node) Capacity() uint64 { return n.Obj.Memory }

// Allocated returns the bytes currently allocated on the node.
func (n *Node) Allocated() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.allocated
}

// effectiveCapacityLocked is the capacity after any injected shrink.
// Callers must hold n.mu.
func (n *Node) effectiveCapacityLocked() uint64 {
	if n.capLimit > 0 && n.capLimit < n.Obj.Memory {
		return n.capLimit
	}
	return n.Obj.Memory
}

// EffectiveCapacity returns the node capacity after any injected
// capacity shrink (EffectiveCapacity <= Capacity).
func (n *Node) EffectiveCapacity() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.effectiveCapacityLocked()
}

// Available returns the bytes still allocatable on the node: zero when
// the node is offline or an injected shrink put it over capacity.
func (n *Node) Available() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	cap := n.effectiveCapacityLocked()
	if n.offline || n.allocated >= cap {
		return 0
	}
	return cap - n.allocated
}

// bumpGen advances the owning machine's placement generation, if this
// node belongs to one.
func (n *Node) bumpGen() {
	if n.gen != nil {
		n.gen.Add(1)
	}
}

// SetOffline marks the node offline (no new reservations) or back
// online. Releases always succeed, so buffers can be freed or migrated
// off a dead node.
func (n *Node) SetOffline(off bool) {
	n.mu.Lock()
	n.offline = off
	n.mu.Unlock()
	n.bumpGen()
}

// Offline reports whether the node is offline.
func (n *Node) Offline() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.offline
}

// SetCapacityLimit injects a capacity shrink: the node behaves as if it
// had limit bytes (0 restores the full capacity). Bytes already
// allocated above the limit stay allocated; new reservations fail until
// usage drops below the limit.
func (n *Node) SetCapacityLimit(limit uint64) {
	n.mu.Lock()
	n.capLimit = limit
	n.mu.Unlock()
	n.bumpGen()
}

// SetPerfFactors injects performance degradation: delivered bandwidth
// is scaled by bw (1 = nominal, 0.25 = severely degraded) and latency
// by lat (1 = nominal, 4 = severely degraded). Zero values reset to
// nominal.
func (n *Node) SetPerfFactors(bw, lat float64) {
	n.mu.Lock()
	n.bwFactor, n.latFactor = bw, lat
	n.mu.Unlock()
	n.bumpGen()
}

// PerfFactors returns the current degradation multipliers (1, 1 when
// nominal).
func (n *Node) PerfFactors() (bw, lat float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	bw, lat = n.bwFactor, n.latFactor
	if bw == 0 {
		bw = 1
	}
	if lat == 0 {
		lat = 1
	}
	return bw, lat
}

// Degraded reports whether the node currently runs below nominal
// performance.
func (n *Node) Degraded() bool {
	bw, lat := n.PerfFactors()
	return bw < 1 || lat > 1
}

// InjectAllocFailures makes the next count reservations on this node
// fail with ErrTransient, simulating transient allocation faults.
func (n *Node) InjectAllocFailures(count uint64) {
	n.mu.Lock()
	n.failNext += count
	n.mu.Unlock()
}

// reserve atomically claims size bytes on the node, failing with
// ErrNodeOffline when the node is down, ErrTransient when a fault was
// injected, and ErrNoCapacity when the bytes do not fit.
func (n *Node) reserve(size uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.offline {
		return fmt.Errorf("%w: %s#%d", ErrNodeOffline, n.Kind(), n.OSIndex())
	}
	if n.failNext > 0 {
		n.failNext--
		return fmt.Errorf("%w: %s#%d", ErrTransient, n.Kind(), n.OSIndex())
	}
	cap := n.effectiveCapacityLocked()
	avail := uint64(0)
	if cap > n.allocated {
		avail = cap - n.allocated
	}
	if avail < size {
		return fmt.Errorf("%w: %s#%d needs %d, has %d", ErrNoCapacity,
			n.Kind(), n.OSIndex(), size, avail)
	}
	n.allocated += size
	return nil
}

// release returns size bytes to the node.
func (n *Node) release(size uint64) {
	n.mu.Lock()
	n.allocated -= size
	n.mu.Unlock()
}

// Kind returns the node's memory kind.
func (n *Node) Kind() string { return KindOf(n.Obj) }

// Label returns the node's "KIND#os" rendering (e.g. "MCDRAM#4"),
// cached at machine construction so hot paths pay no formatting.
func (n *Node) Label() string {
	if n.label != "" {
		return n.label
	}
	return fmt.Sprintf("%s#%d", n.Kind(), n.OSIndex())
}

// Segment is a part of a buffer resident on one node.
type Segment struct {
	Node  *Node
	Bytes uint64
}

// Buffer is an application data buffer placed on one or more nodes.
//
// Placement state (Segments, freed) is guarded by a per-buffer lock so
// Free and Migrate are safe against concurrent calls on the same
// buffer; the per-buffer counters belong to the single-threaded engine.
type Buffer struct {
	Name string
	Size uint64

	// Segments is the buffer's placement. Guarded by mu: concurrent
	// readers must use SegmentsSnapshot, NodeNames, or OnKind; direct
	// access is only safe while no Migrate/Free can run.
	Segments []Segment

	// Per-buffer counters for the profiler (Fig 7 of the paper).
	LLCMisses uint64
	// RandomMisses is the share of LLCMisses caused by irregular
	// (latency-bound) accesses, used to classify buffer sensitivity.
	RandomMisses uint64
	Loads        uint64
	Stores       uint64

	mu    sync.Mutex // guards Segments and freed
	freed bool
	m     *Machine

	// tele mirrors the engine-owned counters above for concurrent
	// readers: the engine publishes into it at the end of every Phase
	// (and on ResetCounters), so a background sampler — the daemon's
	// tiering advisor — can read a coherent snapshot without touching
	// the single-threaded simulation state.
	tele telemetry
}

// Telemetry is a point-in-time copy of a buffer's access counters, safe
// to read concurrently with a running engine. Counters are cumulative
// since allocation (or the last ResetCounters); samplers diff
// successive snapshots to get per-interval activity.
type Telemetry struct {
	LLCMisses    uint64 `json:"llc_misses"`
	RandomMisses uint64 `json:"random_misses"`
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`
}

// telemetry is the atomic mirror behind TelemetrySnapshot.
type telemetry struct {
	llcMisses, randomMisses, loads, stores atomic.Uint64
}

// publishTelemetry copies the engine-owned counters into the atomic
// mirror. Called by the engine at phase end and by ResetCounters; not
// safe to race with other writers (the engine is single-threaded).
func (b *Buffer) publishTelemetry() {
	b.tele.llcMisses.Store(b.LLCMisses)
	b.tele.randomMisses.Store(b.RandomMisses)
	b.tele.loads.Store(b.Loads)
	b.tele.stores.Store(b.Stores)
}

// TelemetrySnapshot returns the last published counters. Safe for
// concurrent use; returns zeros until the first phase completes.
func (b *Buffer) TelemetrySnapshot() Telemetry {
	return Telemetry{
		LLCMisses:    b.tele.llcMisses.Load(),
		RandomMisses: b.tele.randomMisses.Load(),
		Loads:        b.tele.loads.Load(),
		Stores:       b.tele.stores.Load(),
	}
}

// SegmentsSnapshot returns a copy of the buffer's current segments,
// safe against a concurrent Migrate.
func (b *Buffer) SegmentsSnapshot() []Segment {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Segment, len(b.Segments))
	copy(out, b.Segments)
	return out
}

// Freed reports whether the buffer has been released.
func (b *Buffer) Freed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.freed
}

// NodeNames describes the placement, e.g. "DRAM#0" or
// "MCDRAM#1+DRAM#0" for a hybrid allocation. The common single-segment
// case returns the node's cached label without allocating.
func (b *Buffer) NodeNames() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.Segments) == 1 {
		return b.Segments[0].Node.Label()
	}
	s := ""
	for _, seg := range b.Segments {
		if s != "" {
			s += "+"
		}
		s += seg.Node.Label()
	}
	return s
}

// OnKind reports whether any segment of the buffer resides on a node
// of the given kind.
func (b *Buffer) OnKind(kind string) bool {
	for _, seg := range b.SegmentsSnapshot() {
		if seg.Node.Kind() == kind {
			return true
		}
	}
	return false
}

// Machine is the simulated memory system of one topology.
//
// Alloc, AllocSplit, AllocInterleave, Free, Migrate, MigrationCost, and
// Buffers are safe for concurrent use: capacity accounting takes only
// the per-node locks of the nodes involved, and the buffer registry has
// its own short-lived lock. The engine (NewEngine/Phase) and counter
// accessors remain single-threaded by design.
type Machine struct {
	topo  *topology.Topology
	model MachineModel
	nodes map[int]*Node // by OS index

	// gen is the machine's placement generation: it advances on every
	// change that can alter a placement ranking or a node's
	// admissibility (offline/online, capacity shrink, performance
	// degradation). Caches of ranked candidates (internal/alloc) compare
	// generations instead of re-ranking on every allocation. Byte-level
	// capacity accounting deliberately does NOT bump it: rankings are by
	// attribute value, and a full node is discovered by the capacity
	// check at placement time.
	gen atomic.Uint64

	bufMu   sync.Mutex // guards buffers
	buffers []*Buffer
}

// NewMachine builds the runtime machine for a topology and its model.
// Every NUMA node must have a model.
func NewMachine(topo *topology.Topology, model MachineModel) (*Machine, error) {
	m := &Machine{topo: topo, model: model, nodes: make(map[int]*Node)}
	for _, obj := range topo.NUMANodes() {
		nm, ok := model.Nodes[obj.OSIndex]
		if !ok {
			return nil, fmt.Errorf("%w: NUMA node P#%d", ErrNoModel, obj.OSIndex)
		}
		if nm.Kind == "" {
			nm.Kind = KindOf(obj)
		}
		m.nodes[obj.OSIndex] = &Node{
			Obj: obj, Model: nm, gen: &m.gen,
			label: fmt.Sprintf("%s#%d", KindOf(obj), obj.OSIndex),
		}
	}
	if m.model.FreqGHz == 0 {
		m.model.FreqGHz = 2.1
	}
	if m.model.Caches.LineSize == 0 {
		m.model.Caches = DefaultCaches()
	}
	return m, nil
}

// Topology returns the machine's topology.
func (m *Machine) Topology() *topology.Topology { return m.topo }

// Generation returns the machine's placement generation (see the field
// doc). It only ever grows.
func (m *Machine) Generation() uint64 { return m.gen.Load() }

// BumpGeneration invalidates any ranked-candidate cache built on this
// machine. The fault setters call it implicitly; callers that mutate
// placement inputs out-of-band (e.g. editing attribute values on a live
// registry) bump explicitly.
func (m *Machine) BumpGeneration() { m.gen.Add(1) }

// Model returns the machine model.
func (m *Machine) Model() MachineModel { return m.model }

// Node returns the runtime node for a topology NUMA object.
func (m *Machine) Node(obj *topology.Object) *Node { return m.nodes[obj.OSIndex] }

// NodeByOS returns the runtime node with the given OS index, or nil.
func (m *Machine) NodeByOS(os int) *Node { return m.nodes[os] }

// Nodes returns all runtime nodes ordered by OS index.
func (m *Machine) Nodes() []*Node {
	out := make([]*Node, 0, len(m.nodes))
	for _, n := range m.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OSIndex() < out[j].OSIndex() })
	return out
}

// Alloc places size bytes on the given node, failing with
// ErrNoCapacity if it does not fit entirely.
func (m *Machine) Alloc(name string, size uint64, node *Node) (*Buffer, error) {
	if err := node.reserve(size); err != nil {
		return nil, err
	}
	b := &Buffer{Name: name, Size: size, Segments: []Segment{{node, size}}, m: m}
	m.track(b)
	return b, nil
}

// AllocSplit places a buffer across several nodes with explicit byte
// counts per node (hybrid/partial allocation across two kinds of
// memory, as discussed in the paper's capacity section). All-or-nothing:
// on failure, partially reserved capacity is rolled back.
func (m *Machine) AllocSplit(name string, parts []Segment) (*Buffer, error) {
	var total uint64
	for i, p := range parts {
		if err := p.Node.reserve(p.Bytes); err != nil {
			for _, q := range parts[:i] {
				q.Node.release(q.Bytes)
			}
			return nil, err
		}
		total += p.Bytes
	}
	segs := make([]Segment, len(parts))
	copy(segs, parts)
	b := &Buffer{Name: name, Size: total, Segments: segs, m: m}
	m.track(b)
	return b, nil
}

// track registers a buffer in the machine's allocation-order list.
func (m *Machine) track(b *Buffer) {
	m.bufMu.Lock()
	m.buffers = append(m.buffers, b)
	m.bufMu.Unlock()
}

// AllocInterleave spreads size bytes round-robin across the given
// nodes (the OS "interleave" policy). All-or-nothing.
func (m *Machine) AllocInterleave(name string, size uint64, nodes []*Node) (*Buffer, error) {
	if len(nodes) == 0 {
		return nil, errors.New("memsim: interleave across zero nodes")
	}
	per := size / uint64(len(nodes))
	parts := make([]Segment, len(nodes))
	rem := size
	for i, n := range nodes {
		b := per
		if i == len(nodes)-1 {
			b = rem
		}
		parts[i] = Segment{n, b}
		rem -= b
	}
	return m.AllocSplit(name, parts)
}

// Free releases the buffer's memory back to its nodes.
func (m *Machine) Free(b *Buffer) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.freed {
		return ErrFreed
	}
	for _, seg := range b.Segments {
		seg.Node.release(seg.Bytes)
	}
	b.freed = true
	return nil
}

// MigrationCost estimates the time Migrate would take, without moving
// anything: copy time bounded by the slower of source read and
// destination write bandwidth, plus per-page OS bookkeeping.
func (m *Machine) MigrationCost(b *Buffer, dst *Node) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return migrationCostLocked(b, dst)
}

func migrationCostLocked(b *Buffer, dst *Node) float64 {
	const pageSize = 4096
	const perPageOS = 1.2e-6
	var seconds float64
	for _, seg := range b.Segments {
		if seg.Node == dst {
			continue
		}
		srcF, _ := seg.Node.PerfFactors()
		dstF, _ := dst.PerfFactors()
		bw := seg.Node.Model.ReadBW * srcF
		if w := dst.Model.WriteBW * dstF; w < bw {
			bw = w
		}
		if bw <= 0 {
			bw = 1
		}
		seconds += float64(seg.Bytes)/(bw*float64(1<<30)) + perPageOS*float64(seg.Bytes/pageSize)
	}
	return seconds
}

// Migrate moves the whole buffer onto the destination node, failing
// with ErrNoCapacity if it does not fit. It returns the time the copy
// would take (bounded by the slower of the source read and destination
// write bandwidths, plus a per-page OS cost), which the caller's engine
// should add to its clock — the paper stresses that migration is
// expensive in operating systems.
func (m *Machine) Migrate(b *Buffer, dst *Node) (seconds float64, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.freed {
		return 0, ErrFreed
	}
	already := uint64(0)
	for _, seg := range b.Segments {
		if seg.Node == dst {
			already += seg.Bytes
		}
	}
	need := b.Size - already
	if err := dst.reserve(need); err != nil {
		return 0, fmt.Errorf("%w: migrating %q to %s#%d", ErrNoCapacity, b.Name, dst.Kind(), dst.OSIndex())
	}
	seconds = migrationCostLocked(b, dst)
	for _, seg := range b.Segments {
		if seg.Node == dst {
			continue
		}
		seg.Node.release(seg.Bytes)
	}
	b.Segments = []Segment{{dst, b.Size}}
	return seconds, nil
}

// Buffers returns all live buffers in allocation order.
func (m *Machine) Buffers() []*Buffer {
	m.bufMu.Lock()
	all := make([]*Buffer, len(m.buffers))
	copy(all, m.buffers)
	m.bufMu.Unlock()
	var out []*Buffer
	for _, b := range all {
		if !b.Freed() {
			out = append(out, b)
		}
	}
	return out
}

// ResetCounters clears all node and buffer counters (allocation state
// is preserved). Like the engine that feeds them, this is not safe to
// run concurrently with Phase.
func (m *Machine) ResetCounters() {
	for _, n := range m.nodes {
		n.BytesRead, n.BytesWritten, n.RandomReads = 0, 0, 0
	}
	m.bufMu.Lock()
	defer m.bufMu.Unlock()
	for _, b := range m.buffers {
		b.LLCMisses, b.RandomMisses, b.Loads, b.Stores = 0, 0, 0, 0
		b.publishTelemetry()
	}
}
