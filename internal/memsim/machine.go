package memsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hetmem/internal/topology"
)

// Errors returned by allocation.
var (
	ErrNoCapacity = errors.New("memsim: node capacity exhausted")
	ErrNoModel    = errors.New("memsim: node has no performance model")
	ErrFreed      = errors.New("memsim: buffer already freed")
)

// Node is the runtime state of one NUMA node: its model plus capacity
// accounting and traffic counters.
type Node struct {
	Obj   *topology.Object
	Model NodeModel

	allocated uint64

	// Counters, accumulated by the engine.
	BytesRead    uint64
	BytesWritten uint64
	RandomReads  uint64
}

// OSIndex returns the node's OS index.
func (n *Node) OSIndex() int { return n.Obj.OSIndex }

// Capacity returns the node capacity in bytes.
func (n *Node) Capacity() uint64 { return n.Obj.Memory }

// Allocated returns the bytes currently allocated on the node.
func (n *Node) Allocated() uint64 { return n.allocated }

// Available returns the bytes still allocatable on the node.
func (n *Node) Available() uint64 { return n.Obj.Memory - n.allocated }

// Kind returns the node's memory kind.
func (n *Node) Kind() string { return KindOf(n.Obj) }

// Segment is a part of a buffer resident on one node.
type Segment struct {
	Node  *Node
	Bytes uint64
}

// Buffer is an application data buffer placed on one or more nodes.
type Buffer struct {
	Name string
	Size uint64

	Segments []Segment

	// Per-buffer counters for the profiler (Fig 7 of the paper).
	LLCMisses uint64
	// RandomMisses is the share of LLCMisses caused by irregular
	// (latency-bound) accesses, used to classify buffer sensitivity.
	RandomMisses uint64
	Loads        uint64
	Stores       uint64

	freed bool
	m     *Machine
}

// NodeNames describes the placement, e.g. "DRAM#0" or
// "MCDRAM#1+DRAM#0" for a hybrid allocation.
func (b *Buffer) NodeNames() string {
	s := ""
	for i, seg := range b.Segments {
		if i > 0 {
			s += "+"
		}
		s += fmt.Sprintf("%s#%d", seg.Node.Kind(), seg.Node.OSIndex())
	}
	return s
}

// OnKind reports whether any segment of the buffer resides on a node
// of the given kind.
func (b *Buffer) OnKind(kind string) bool {
	for _, seg := range b.Segments {
		if seg.Node.Kind() == kind {
			return true
		}
	}
	return false
}

// Machine is the simulated memory system of one topology.
type Machine struct {
	mu    sync.Mutex
	topo  *topology.Topology
	model MachineModel
	nodes map[int]*Node // by OS index

	buffers []*Buffer
}

// NewMachine builds the runtime machine for a topology and its model.
// Every NUMA node must have a model.
func NewMachine(topo *topology.Topology, model MachineModel) (*Machine, error) {
	m := &Machine{topo: topo, model: model, nodes: make(map[int]*Node)}
	for _, obj := range topo.NUMANodes() {
		nm, ok := model.Nodes[obj.OSIndex]
		if !ok {
			return nil, fmt.Errorf("%w: NUMA node P#%d", ErrNoModel, obj.OSIndex)
		}
		if nm.Kind == "" {
			nm.Kind = KindOf(obj)
		}
		m.nodes[obj.OSIndex] = &Node{Obj: obj, Model: nm}
	}
	if m.model.FreqGHz == 0 {
		m.model.FreqGHz = 2.1
	}
	if m.model.Caches.LineSize == 0 {
		m.model.Caches = DefaultCaches()
	}
	return m, nil
}

// Topology returns the machine's topology.
func (m *Machine) Topology() *topology.Topology { return m.topo }

// Model returns the machine model.
func (m *Machine) Model() MachineModel { return m.model }

// Node returns the runtime node for a topology NUMA object.
func (m *Machine) Node(obj *topology.Object) *Node { return m.nodes[obj.OSIndex] }

// NodeByOS returns the runtime node with the given OS index, or nil.
func (m *Machine) NodeByOS(os int) *Node { return m.nodes[os] }

// Nodes returns all runtime nodes ordered by OS index.
func (m *Machine) Nodes() []*Node {
	out := make([]*Node, 0, len(m.nodes))
	for _, n := range m.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OSIndex() < out[j].OSIndex() })
	return out
}

// Alloc places size bytes on the given node, failing with
// ErrNoCapacity if it does not fit entirely.
func (m *Machine) Alloc(name string, size uint64, node *Node) (*Buffer, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if node.Available() < size {
		return nil, fmt.Errorf("%w: %s#%d needs %d, has %d", ErrNoCapacity,
			node.Kind(), node.OSIndex(), size, node.Available())
	}
	node.allocated += size
	b := &Buffer{Name: name, Size: size, Segments: []Segment{{node, size}}, m: m}
	m.buffers = append(m.buffers, b)
	return b, nil
}

// AllocSplit places a buffer across several nodes with explicit byte
// counts per node (hybrid/partial allocation across two kinds of
// memory, as discussed in the paper's capacity section). All-or-nothing.
func (m *Machine) AllocSplit(name string, parts []Segment) (*Buffer, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total uint64
	for _, p := range parts {
		if p.Node.Available() < p.Bytes {
			return nil, fmt.Errorf("%w: %s#%d needs %d, has %d", ErrNoCapacity,
				p.Node.Kind(), p.Node.OSIndex(), p.Bytes, p.Node.Available())
		}
		total += p.Bytes
	}
	segs := make([]Segment, len(parts))
	for i, p := range parts {
		p.Node.allocated += p.Bytes
		segs[i] = p
	}
	b := &Buffer{Name: name, Size: total, Segments: segs, m: m}
	m.buffers = append(m.buffers, b)
	return b, nil
}

// AllocInterleave spreads size bytes round-robin across the given
// nodes (the OS "interleave" policy). All-or-nothing.
func (m *Machine) AllocInterleave(name string, size uint64, nodes []*Node) (*Buffer, error) {
	if len(nodes) == 0 {
		return nil, errors.New("memsim: interleave across zero nodes")
	}
	per := size / uint64(len(nodes))
	parts := make([]Segment, len(nodes))
	rem := size
	for i, n := range nodes {
		b := per
		if i == len(nodes)-1 {
			b = rem
		}
		parts[i] = Segment{n, b}
		rem -= b
	}
	return m.AllocSplit(name, parts)
}

// Free releases the buffer's memory back to its nodes.
func (m *Machine) Free(b *Buffer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b.freed {
		return ErrFreed
	}
	for _, seg := range b.Segments {
		seg.Node.allocated -= seg.Bytes
	}
	b.freed = true
	return nil
}

// MigrationCost estimates the time Migrate would take, without moving
// anything: copy time bounded by the slower of source read and
// destination write bandwidth, plus per-page OS bookkeeping.
func (m *Machine) MigrationCost(b *Buffer, dst *Node) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.migrationCostLocked(b, dst)
}

func (m *Machine) migrationCostLocked(b *Buffer, dst *Node) float64 {
	const pageSize = 4096
	const perPageOS = 1.2e-6
	var seconds float64
	for _, seg := range b.Segments {
		if seg.Node == dst {
			continue
		}
		bw := seg.Node.Model.ReadBW
		if dst.Model.WriteBW < bw {
			bw = dst.Model.WriteBW
		}
		if bw <= 0 {
			bw = 1
		}
		seconds += float64(seg.Bytes)/(bw*float64(1<<30)) + perPageOS*float64(seg.Bytes/pageSize)
	}
	return seconds
}

// Migrate moves the whole buffer onto the destination node, failing
// with ErrNoCapacity if it does not fit. It returns the time the copy
// would take (bounded by the slower of the source read and destination
// write bandwidths, plus a per-page OS cost), which the caller's engine
// should add to its clock — the paper stresses that migration is
// expensive in operating systems.
func (m *Machine) Migrate(b *Buffer, dst *Node) (seconds float64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b.freed {
		return 0, ErrFreed
	}
	already := uint64(0)
	for _, seg := range b.Segments {
		if seg.Node == dst {
			already += seg.Bytes
		}
	}
	need := b.Size - already
	if dst.Available() < need {
		return 0, fmt.Errorf("%w: migrating %q to %s#%d", ErrNoCapacity, b.Name, dst.Kind(), dst.OSIndex())
	}
	seconds = m.migrationCostLocked(b, dst)
	for _, seg := range b.Segments {
		if seg.Node == dst {
			continue
		}
		seg.Node.allocated -= seg.Bytes
	}
	dst.allocated += need
	b.Segments = []Segment{{dst, b.Size}}
	return seconds, nil
}

// Buffers returns all live buffers in allocation order.
func (m *Machine) Buffers() []*Buffer {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Buffer
	for _, b := range m.buffers {
		if !b.freed {
			out = append(out, b)
		}
	}
	return out
}

// ResetCounters clears all node and buffer counters (allocation state
// is preserved).
func (m *Machine) ResetCounters() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range m.nodes {
		n.BytesRead, n.BytesWritten, n.RandomReads = 0, 0, 0
	}
	for _, b := range m.buffers {
		b.LLCMisses, b.RandomMisses, b.Loads, b.Stores = 0, 0, 0, 0
	}
}
