// Package sensitivity implements the paper's Section V: deciding which
// performance attribute each application (or buffer) should request.
// Three methods are provided, matching the survey and Figure 6:
//
//   - Benchmarking: run the whole process bound to each kind of memory
//     and compare the application metric (Section V-A / VI-A). The
//     classifier rejects attributes whose large value differences do
//     not translate into performance differences (the KNL bandwidth
//     case) and keeps those consistent with the observations.
//   - Profiling: read the VTune-style summary flags and the hot-object
//     report (Section V-B / VI-B) to classify the run and individual
//     buffers.
//   - Static analysis: classify declared kernel access patterns
//     (Section V-C — surveyed in the paper, implemented here as a
//     lightweight pattern classifier).
//
// The output of every method is expressed in the same vocabulary the
// allocator consumes: a memattr attribute per application or buffer.
package sensitivity

import (
	"errors"
	"fmt"
	"sort"

	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/profile"
)

// NodeMetric is the application metric measured with the whole process
// bound to one node (higher is better, e.g. TEPS or GB/s).
type NodeMetric struct {
	Node   *memsim.Node
	Metric float64
}

// BenchmarkProcess runs the application once per candidate node with
// everything allocated there, returning the per-node metrics. runOn
// must return a higher-is-better figure.
func BenchmarkProcess(nodes []*memsim.Node, runOn func(*memsim.Node) (float64, error)) ([]NodeMetric, error) {
	var out []NodeMetric
	for _, n := range nodes {
		v, err := runOn(n)
		if err != nil {
			return nil, fmt.Errorf("sensitivity: benchmarking on %s#%d: %w", n.Kind(), n.OSIndex(), err)
		}
		out = append(out, NodeMetric{n, v})
	}
	return out, nil
}

// Classification thresholds.
const (
	// insensitiveSpread: below this relative performance spread the
	// application does not care where it runs.
	insensitiveSpread = 0.05
	// attrSignificant: attribute values differing by less than this
	// ratio impose no ordering constraint.
	attrSignificant = 1.15
	// perfSignificant: a "better" placement must win by at least this
	// ratio to count as confirming an attribute.
	perfSignificant = 1.05
)

// ErrNoMetrics is returned when classification has nothing to work on.
var ErrNoMetrics = errors.New("sensitivity: no metrics to classify")

// ClassifyFromBench returns the attributes consistent with the
// measured per-node performance, best-supported first. An attribute is
// *rejected* when two nodes differ significantly in its value but the
// application performs the same on both (the paper's KNL-bandwidth
// observation: 3x the bandwidth, same TEPS — so bandwidth is not what
// the application needs). When performance barely varies across all
// nodes, the only recommendation is Capacity: do not spend scarce fast
// memory on an insensitive application.
func ClassifyFromBench(metrics []NodeMetric, reg *memattr.Registry, initiator *bitmap.Bitmap) ([]memattr.ID, error) {
	if len(metrics) < 2 {
		return nil, fmt.Errorf("%w: need at least two placements", ErrNoMetrics)
	}
	lo, hi := metrics[0].Metric, metrics[0].Metric
	for _, m := range metrics[1:] {
		if m.Metric < lo {
			lo = m.Metric
		}
		if m.Metric > hi {
			hi = m.Metric
		}
	}
	if hi <= 0 {
		return nil, fmt.Errorf("%w: degenerate metrics", ErrNoMetrics)
	}
	insensitive := (hi-lo)/hi < insensitiveSpread

	candidates := []memattr.ID{memattr.Latency, memattr.Bandwidth}
	type scored struct {
		id      memattr.ID
		support int
	}
	var kept []scored
	for _, attr := range candidates {
		flags, err := reg.Flags(attr)
		if err != nil {
			return nil, err
		}
		consistent := true
		support := 0
		for i := 0; i < len(metrics) && consistent; i++ {
			for j := 0; j < len(metrics) && consistent; j++ {
				if i == j {
					continue
				}
				vi, erri := reg.Value(attr, metrics[i].Node.Obj, initiator)
				vj, errj := reg.Value(attr, metrics[j].Node.Obj, initiator)
				if erri != nil || errj != nil {
					continue // unmeasured pair imposes no constraint
				}
				betterI := attrBetter(flags, vi, vj)
				if !betterI {
					continue
				}
				// Node i has a significantly better attribute value.
				// If the application does not run faster there, the
				// attribute does not explain its behaviour.
				if metrics[i].Metric >= metrics[j].Metric*perfSignificant {
					support++
				} else {
					consistent = false
				}
			}
		}
		if consistent {
			kept = append(kept, scored{attr, support})
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].support > kept[j].support })
	out := make([]memattr.ID, 0, len(kept)+1)
	if insensitive {
		// Performance barely varies: lead with Capacity (do not spend
		// scarce fast memory on this application) but keep the
		// attributes that remain *consistent* with the observations —
		// on KNL equal latencies explain equal TEPS, so Latency stays
		// a valid hypothesis while Bandwidth is rejected.
		out = append(out, memattr.Capacity)
	}
	for _, k := range kept {
		out = append(out, k.id)
	}
	if len(out) == 0 {
		out = append(out, memattr.Capacity)
	}
	return out, nil
}

// attrBetter reports whether value a is *significantly* better than b
// under the attribute direction.
func attrBetter(flags memattr.Flags, a, b uint64) bool {
	if a == 0 || b == 0 {
		return false
	}
	if flags&memattr.HigherFirst != 0 {
		return float64(a) >= float64(b)*attrSignificant
	}
	return float64(b) >= float64(a)*attrSignificant
}

// Intersect combines the candidate lists obtained on different
// machines (or different runs), keeping attributes supported
// everywhere, in the order of the first list. This is how the paper's
// use case converges on Latency for Graph500: the Xeon cannot separate
// latency from bandwidth (DRAM wins both), the KNL rules bandwidth
// out.
func Intersect(lists ...[]memattr.ID) []memattr.ID {
	if len(lists) == 0 {
		return nil
	}
	out := append([]memattr.ID(nil), lists[0]...)
	for _, l := range lists[1:] {
		set := make(map[memattr.ID]bool, len(l))
		for _, id := range l {
			set[id] = true
		}
		var next []memattr.ID
		for _, id := range out {
			if set[id] {
				next = append(next, id)
			}
		}
		out = next
	}
	return out
}

// FromProfile converts the profiler's summary flags into an attribute
// recommendation for the whole application.
func FromProfile(s profile.Summary) memattr.ID {
	switch {
	case s.BandwidthSensitive:
		return memattr.Bandwidth
	case s.LatencySensitive:
		return memattr.Latency
	default:
		return memattr.Capacity
	}
}

// BufferRecommendation pairs a buffer name with the attribute its
// observed access profile calls for.
type BufferRecommendation struct {
	Name      string
	Attr      memattr.ID
	Report    profile.ObjectReport
	Rationale string
}

// Options is the shared tunable set for per-buffer classification,
// used both by the offline tools (repro/membench reading a finished
// run) and by the daemon's live tiering advisor (which adds the
// stability knobs). The zero value is usable; Default fills in the
// documented defaults.
type Options struct {
	// MinMissShare is the share of total LLC misses below which a
	// buffer is classified Capacity (not performance-critical).
	MinMissShare float64 `json:"min_miss_share"`
	// Hysteresis is the number of consecutive agreeing samples a live
	// classifier requires before acting on a change (ignored by the
	// one-shot offline path).
	Hysteresis int `json:"hysteresis"`
	// CooldownSamples is the number of sample intervals a live
	// classifier waits after moving a buffer before reconsidering it
	// (ignored by the one-shot offline path).
	CooldownSamples int `json:"cooldown_samples"`
}

// DefaultOptions returns the documented defaults: buffers under 1% of
// total misses are capacity-tier, a live classifier waits for 3
// agreeing samples and rests 5 intervals after a move.
func DefaultOptions() Options {
	return Options{MinMissShare: 0.01, Hysteresis: 3, CooldownSamples: 5}
}

// FromHotObjects converts a hot-object report into per-buffer
// recommendations — the actionable outcome of the paper's Section
// VI-B: "modify Graph500 to allocate this buffer with the latency
// attribute". Buffers below minMissShare of the total misses are
// classified Capacity (not performance-critical).
//
// Deprecated-in-spirit compat wrapper: new callers should use
// FromHotObjectsOpts, which takes the shared Options struct instead of
// a bare float.
func FromHotObjects(objs []profile.ObjectReport, minMissShare float64) []BufferRecommendation {
	return FromHotObjectsOpts(objs, Options{MinMissShare: minMissShare})
}

// FromHotObjectsOpts is FromHotObjects with the full tunable set.
func FromHotObjectsOpts(objs []profile.ObjectReport, opts Options) []BufferRecommendation {
	var total uint64
	for _, o := range objs {
		total += o.LLCMisses
	}
	out := make([]BufferRecommendation, 0, len(objs))
	for _, o := range objs {
		out = append(out, classifyObject(o, total, opts))
	}
	return out
}

// ClassifyObject classifies one buffer against a total miss count —
// the incremental entry point the live advisor uses with per-interval
// deltas (profile.ObjectReportDelta) instead of a whole-machine report.
func ClassifyObject(o profile.ObjectReport, totalMisses uint64, opts Options) BufferRecommendation {
	return classifyObject(o, totalMisses, opts)
}

func classifyObject(o profile.ObjectReport, total uint64, opts Options) BufferRecommendation {
	rec := BufferRecommendation{Name: o.Name, Report: o}
	share := 0.0
	if total > 0 {
		share = float64(o.LLCMisses) / float64(total)
	}
	switch {
	case share < opts.MinMissShare:
		rec.Attr = memattr.Capacity
		rec.Rationale = fmt.Sprintf("only %.1f%% of LLC misses: not performance-critical", 100*share)
	case o.Sensitivity() == "Latency":
		rec.Attr = memattr.Latency
		rec.Rationale = fmt.Sprintf("%.0f%% of its misses are irregular", 100*o.RandomShare)
	default:
		rec.Attr = memattr.Bandwidth
		rec.Rationale = "misses are streaming line fills"
	}
	return rec
}
