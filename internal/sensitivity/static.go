package sensitivity

import "hetmem/internal/memattr"

// AccessPattern is the statically-known access pattern of a buffer in
// a kernel, the information a compiler pass would annotate (Section
// V-C of the paper: "streamed/linear accesses to contiguous buffers
// can be detected and marked as bandwidth sensitive").
type AccessPattern int

const (
	// Sequential is a linear walk over the buffer.
	Sequential AccessPattern = iota
	// Strided is a constant-stride walk (tiled kernels).
	Strided
	// Random is data-dependent indexing (gather/scatter).
	Random
	// PointerChase is dependent pointer dereferencing (linked
	// structures, graph traversal).
	PointerChase
)

// String names the pattern.
func (p AccessPattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	case PointerChase:
		return "pointer-chase"
	default:
		return "unknown"
	}
}

// BufferUse describes how one kernel touches one buffer.
type BufferUse struct {
	Buffer  string
	Pattern AccessPattern
	// AccessesPerElement weights buffers against each other: how many
	// times the kernel touches each element per execution.
	AccessesPerElement float64
}

// KernelSpec is the declarative "source code" a static analyzer
// extracts: one entry per (kernel, buffer) use.
type KernelSpec struct {
	Name string
	Uses []BufferUse
}

// AnalyzeStatic derives per-buffer attribute hints from kernel specs:
// dominant irregular patterns map to Latency, dominant linear patterns
// to Bandwidth, untouched buffers to Capacity. When a buffer is used
// by several kernels, the use with the highest access weight wins;
// irregular uses win ties (a wrong Latency hint wastes less fast
// memory than a wrong Bandwidth hint, since latency-ranked targets
// often coincide with default DRAM).
func AnalyzeStatic(kernels []KernelSpec) map[string]memattr.ID {
	type vote struct {
		attr   memattr.ID
		weight float64
	}
	best := make(map[string]vote)
	for _, k := range kernels {
		for _, u := range k.Uses {
			w := u.AccessesPerElement
			if w <= 0 {
				w = 1
			}
			var attr memattr.ID
			switch u.Pattern {
			case Random, PointerChase:
				attr = memattr.Latency
				w *= 1.0001 // irregular uses win exact ties
			default:
				attr = memattr.Bandwidth
			}
			if cur, ok := best[u.Buffer]; !ok || w > cur.weight {
				best[u.Buffer] = vote{attr, w}
			}
		}
	}
	out := make(map[string]memattr.ID, len(best))
	for name, v := range best {
		out[name] = v.attr
	}
	return out
}
