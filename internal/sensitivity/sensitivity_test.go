package sensitivity

import (
	"errors"
	"testing"

	"hetmem/internal/bench"
	"hetmem/internal/bitmap"
	"hetmem/internal/graph500"
	"hetmem/internal/hmat"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
	"hetmem/internal/profile"
	"hetmem/internal/stream"
)

const gib = uint64(1) << 30

type rig struct {
	m   *memsim.Machine
	reg *memattr.Registry
	ini *bitmap.Bitmap
}

func xeonRig(t *testing.T) rig {
	t.Helper()
	p, err := platform.Get("xeon")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := hmat.Apply(p.HMATTable(), reg); err != nil {
		t.Fatal(err)
	}
	return rig{m, reg, bitmap.NewFromRange(0, 19)}
}

func knlRig(t *testing.T) rig {
	t.Helper()
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	results, err := bench.MeasureAll(m, bench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := bench.Apply(results, reg); err != nil {
		t.Fatal(err)
	}
	return rig{m, reg, bitmap.NewFromRange(0, 15)}
}

// graph500On runs the analytic Graph500 entirely on one node and
// returns the harmonic TEPS — the process-level benchmarking method.
func graph500On(t *testing.T, r rig, scale int, params graph500.SimParams) func(*memsim.Node) (float64, error) {
	return func(n *memsim.Node) (float64, error) {
		s := graph500.Sizes(scale, 16)
		bufs, err := graph500.AllocBuffers(func(name string, size uint64) (*memsim.Buffer, error) {
			return r.m.Alloc(name, size, n)
		}, s)
		if err != nil {
			return 0, err
		}
		defer bufs.Free(r.m)
		e := memsim.NewEngine(r.m, r.ini)
		e.SetThreads(16)
		an := graph500.AnalyticStats(scale, 16)
		res := graph500.RunTEPS(e, bufs, []graph500.BFSStats{an, an}, params)
		return res.HarmonicTEPS, nil
	}
}

func localNodes(r rig, kinds ...string) []*memsim.Node {
	want := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []*memsim.Node
	for _, obj := range r.m.Topology().LocalNUMANodes(r.ini) {
		if want[obj.Subtype] {
			out = append(out, r.m.Node(obj))
		}
	}
	return out
}

func TestUseCaseBenchmarkingConvergesOnLatency(t *testing.T) {
	// Section VI-A end to end: benchmark Graph500 on both testbeds,
	// classify, intersect — the answer must be Latency.
	xeon := xeonRig(t)
	xm, err := BenchmarkProcess(localNodes(xeon, "DRAM", "NVDIMM"), graph500On(t, xeon, 23, graph500.SimParams{}))
	if err != nil {
		t.Fatal(err)
	}
	xeonCands, err := ClassifyFromBench(xm, xeon.reg, xeon.ini)
	if err != nil {
		t.Fatal(err)
	}
	// On the Xeon, DRAM wins and is better in both latency and
	// bandwidth: both hypotheses survive.
	if !contains(xeonCands, memattr.Latency) || !contains(xeonCands, memattr.Bandwidth) {
		t.Fatalf("xeon candidates = %v", names(xeon.reg, xeonCands))
	}

	knl := knlRig(t)
	km, err := BenchmarkProcess(localNodes(knl, "DRAM", "MCDRAM"), graph500On(t, knl, 21, graph500.SimParams{CPUPerEdge: 1.8e-7, MLP: 3}))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table IIb observation: HBM ≈ DRAM.
	spread := (km[0].Metric - km[1].Metric) / km[0].Metric
	if spread < 0 {
		spread = -spread
	}
	if spread > 0.05 {
		t.Fatalf("KNL TEPS spread %.3f should be small (HBM %.3g vs DRAM %.3g)", spread, km[1].Metric, km[0].Metric)
	}
	knlCands, err := ClassifyFromBench(km, knl.reg, knl.ini)
	if err != nil {
		t.Fatal(err)
	}
	// Bandwidth must be rejected: 3x the bandwidth bought nothing.
	if contains(knlCands, memattr.Bandwidth) {
		t.Fatalf("knl candidates = %v: bandwidth should be rejected", names(knl.reg, knlCands))
	}
	if !contains(knlCands, memattr.Latency) {
		t.Fatalf("knl candidates = %v: latency should survive (equal latencies, equal TEPS)", names(knl.reg, knlCands))
	}

	final := Intersect(xeonCands, knlCands)
	if len(final) != 1 || final[0] != memattr.Latency {
		t.Fatalf("intersection = %v, want [Latency]", names(xeon.reg, final))
	}
}

func TestStreamClassifiesBandwidth(t *testing.T) {
	// STREAM on KNL: MCDRAM is 3x faster, consistent with bandwidth;
	// latency (equal values) also survives vacuously, but bandwidth
	// must lead by support.
	knl := knlRig(t)
	runStream := func(n *memsim.Node) (float64, error) {
		ar, err := stream.AllocArrays(func(name string, size uint64) (*memsim.Buffer, error) {
			return r0alloc(knl, name, size, n)
		}, gib/stream.ElemBytes)
		if err != nil {
			return 0, err
		}
		defer ar.Free(knl.m)
		e := memsim.NewEngine(knl.m, knl.ini)
		return stream.Run(e, ar, 2).TriadBW, nil
	}
	km, err := BenchmarkProcess(localNodes(knl, "DRAM", "MCDRAM"), runStream)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := ClassifyFromBench(km, knl.reg, knl.ini)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || cands[0] != memattr.Bandwidth {
		t.Fatalf("stream candidates = %v, want Bandwidth first", names(knl.reg, cands))
	}
}

func r0alloc(r rig, name string, size uint64, n *memsim.Node) (*memsim.Buffer, error) {
	return r.m.Alloc(name, size, n)
}

func TestClassifyErrors(t *testing.T) {
	xeon := xeonRig(t)
	if _, err := ClassifyFromBench(nil, xeon.reg, xeon.ini); !errors.Is(err, ErrNoMetrics) {
		t.Fatalf("err = %v", err)
	}
	n := xeon.m.NodeByOS(0)
	bad := []NodeMetric{{n, 0}, {xeon.m.NodeByOS(2), 0}}
	if _, err := ClassifyFromBench(bad, xeon.reg, xeon.ini); !errors.Is(err, ErrNoMetrics) {
		t.Fatalf("err = %v", err)
	}
}

func TestBenchmarkProcessPropagatesError(t *testing.T) {
	xeon := xeonRig(t)
	boom := errors.New("boom")
	_, err := BenchmarkProcess([]*memsim.Node{xeon.m.NodeByOS(0)}, func(*memsim.Node) (float64, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestIntersect(t *testing.T) {
	a := []memattr.ID{memattr.Latency, memattr.Bandwidth}
	b := []memattr.ID{memattr.Capacity, memattr.Latency}
	got := Intersect(a, b)
	if len(got) != 1 || got[0] != memattr.Latency {
		t.Fatalf("got %v", got)
	}
	if Intersect() != nil {
		t.Fatal("empty intersect should be nil")
	}
	if got := Intersect(a); len(got) != 2 {
		t.Fatalf("single-list intersect = %v", got)
	}
	if got := Intersect(a, nil); len(got) != 0 {
		t.Fatalf("disjoint intersect = %v", got)
	}
}

func TestFromProfile(t *testing.T) {
	if FromProfile(profile.Summary{BandwidthSensitive: true, BandwidthKind: "DRAM"}) != memattr.Bandwidth {
		t.Fatal("bandwidth flag should map to Bandwidth")
	}
	if FromProfile(profile.Summary{LatencySensitive: true}) != memattr.Latency {
		t.Fatal("latency flag should map to Latency")
	}
	if FromProfile(profile.Summary{}) != memattr.Capacity {
		t.Fatal("no flags should map to Capacity")
	}
}

func TestFromHotObjectsUseCase(t *testing.T) {
	// Profile Graph500 on the Xeon and derive per-buffer attributes:
	// the parent array must come out Latency — the paper's actionable
	// conclusion ("allocate this buffer with the latency attribute").
	xeon := xeonRig(t)
	s := graph500.Sizes(23, 16)
	node := xeon.m.NodeByOS(0)
	bufs, err := graph500.AllocBuffers(func(name string, size uint64) (*memsim.Buffer, error) {
		return xeon.m.Alloc(name, size, node)
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	defer bufs.Free(xeon.m)
	e := memsim.NewEngine(xeon.m, xeon.ini)
	e.SetThreads(16)
	an := graph500.AnalyticStats(23, 16)
	graph500.RunTEPS(e, bufs, []graph500.BFSStats{an}, graph500.SimParams{})

	recs := FromHotObjects(profile.HotObjects(xeon.m), 0.02)
	byName := map[string]BufferRecommendation{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["bfs_parent"].Attr != memattr.Latency {
		t.Fatalf("bfs_parent -> %v (%s)", byName["bfs_parent"].Attr, byName["bfs_parent"].Rationale)
	}
	if byName["csr_adj"].Attr != memattr.Bandwidth {
		t.Fatalf("csr_adj -> %v (%s)", byName["csr_adj"].Attr, byName["csr_adj"].Rationale)
	}
	// The tiny queue contributes almost no misses: Capacity.
	if byName["bfs_visited"].Attr != memattr.Capacity {
		t.Fatalf("bfs_visited -> %v (%s)", byName["bfs_visited"].Attr, byName["bfs_visited"].Rationale)
	}
}

func TestAnalyzeStatic(t *testing.T) {
	kernels := []KernelSpec{
		{Name: "triad", Uses: []BufferUse{
			{Buffer: "a", Pattern: Sequential, AccessesPerElement: 1},
			{Buffer: "b", Pattern: Sequential, AccessesPerElement: 1},
		}},
		{Name: "bfs", Uses: []BufferUse{
			{Buffer: "parent", Pattern: Random, AccessesPerElement: 16},
			{Buffer: "adj", Pattern: Sequential, AccessesPerElement: 2},
			{Buffer: "work", Pattern: PointerChase, AccessesPerElement: 0}, // weight defaults to 1
		}},
		// A buffer used both ways: the heavier use wins.
		{Name: "mixed", Uses: []BufferUse{
			{Buffer: "idx", Pattern: Sequential, AccessesPerElement: 1},
			{Buffer: "idx", Pattern: Random, AccessesPerElement: 8},
		}},
	}
	got := AnalyzeStatic(kernels)
	want := map[string]memattr.ID{
		"a": memattr.Bandwidth, "b": memattr.Bandwidth,
		"parent": memattr.Latency, "adj": memattr.Bandwidth,
		"work": memattr.Latency, "idx": memattr.Latency,
	}
	for name, attr := range want {
		if got[name] != attr {
			t.Errorf("%s -> %v, want %v", name, got[name], attr)
		}
	}
	// Equal weights: the irregular use wins the tie.
	tie := AnalyzeStatic([]KernelSpec{{Name: "t", Uses: []BufferUse{
		{Buffer: "x", Pattern: Sequential, AccessesPerElement: 2},
		{Buffer: "x", Pattern: PointerChase, AccessesPerElement: 2},
	}}})
	if tie["x"] != memattr.Latency {
		t.Fatalf("tie broke to %v", tie["x"])
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[AccessPattern]string{
		Sequential: "sequential", Strided: "strided", Random: "random",
		PointerChase: "pointer-chase", AccessPattern(99): "unknown",
	} {
		if p.String() != want {
			t.Errorf("%d -> %q", p, p.String())
		}
	}
}

func contains(ids []memattr.ID, id memattr.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func names(reg *memattr.Registry, ids []memattr.ID) []string {
	var out []string
	for _, id := range ids {
		out = append(out, reg.Name(id))
	}
	return out
}
