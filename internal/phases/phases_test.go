package phases

import (
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/core"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
)

const gib = uint64(1) << 30

// rig builds a Xeon system (DRAM 81ns vs NVDIMM 305ns: migrations can
// actually pay off) with a buffer stranded on the NVDIMM.
func rig(t *testing.T) (*core.System, *bitmap.Bitmap, *memsim.Buffer, *memsim.Engine, *Manager) {
	t.Helper()
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ini := sys.InitiatorForPackage(0)
	buf, err := sys.Machine.Alloc("hot", 4*gib, sys.Machine.NodeByOS(2)) // NVDIMM
	if err != nil {
		t.Fatal(err)
	}
	e := sys.Engine(ini)
	mgr := NewManager(sys.Allocator, ini, e.Threads())
	mgr.Manage(buf)
	return sys, ini, buf, e, mgr
}

func TestIdleBufferNoAdvice(t *testing.T) {
	_, _, _, _, mgr := rig(t)
	adv := mgr.Observe()
	if len(adv) != 1 || adv[0].Behaviour != Idle || adv[0].Migrate {
		t.Fatalf("advice = %+v", adv)
	}
}

func TestLatencyBoundAdvisesMigration(t *testing.T) {
	_, _, buf, e, mgr := rig(t)
	// A heavy irregular phase on the NVDIMM-resident buffer.
	e.Phase("chase", []memsim.Access{{Buffer: buf, RandomReads: 400_000_000, MLP: 4}})
	mgr.Horizon = 4
	adv := mgr.Observe()
	if len(adv) != 1 {
		t.Fatalf("advice count = %d", len(adv))
	}
	a := adv[0]
	if a.Behaviour != LatencyBound || a.Attr != memattr.Latency {
		t.Fatalf("classification = %v / %v", a.Behaviour, a.Attr)
	}
	if a.Target == nil || a.Target.Kind() != "DRAM" {
		t.Fatalf("target = %v (%s)", a.Target, a.Reason)
	}
	if !a.Migrate || a.GainPerPhase <= 0 || a.Cost <= 0 {
		t.Fatalf("advice = %+v", a)
	}
	// Apply it: the buffer moves, the clock advances.
	before := e.Elapsed()
	cost, err := mgr.Apply(adv, e)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 || e.Elapsed() <= before {
		t.Fatalf("cost = %f", cost)
	}
	if buf.NodeNames() != "DRAM#0" {
		t.Fatalf("buffer on %s", buf.NodeNames())
	}
	// Next observation: already on the best target, no further move.
	e.Phase("chase", []memsim.Access{{Buffer: buf, RandomReads: 400_000_000, MLP: 4}})
	adv = mgr.Observe()
	if adv[0].Migrate {
		t.Fatalf("should stay put: %+v", adv[0])
	}
}

func TestShortHorizonDeclines(t *testing.T) {
	_, _, buf, e, mgr := rig(t)
	// A light phase: the gain cannot amortize the 4GiB copy within one
	// phase.
	e.Phase("chase", []memsim.Access{{Buffer: buf, RandomReads: 5_000_000, MLP: 4}})
	mgr.Horizon = 1
	adv := mgr.Observe()
	a := adv[0]
	if a.Behaviour != LatencyBound {
		t.Fatalf("behaviour = %v", a.Behaviour)
	}
	if a.Migrate {
		t.Fatalf("light phase should not justify migration: %+v", a)
	}
	// With a long horizon the same behaviour does.
	e.Phase("chase", []memsim.Access{{Buffer: buf, RandomReads: 5_000_000, MLP: 4}})
	mgr.Horizon = 1000
	if a := mgr.Observe()[0]; !a.Migrate {
		t.Fatalf("long horizon should migrate: %+v", a)
	}
}

func TestBandwidthBoundClassification(t *testing.T) {
	sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ini := sys.InitiatorForGroup(0)
	buf, err := sys.Machine.Alloc("streamy", 2*gib, sys.Machine.NodeByOS(0)) // DRAM
	if err != nil {
		t.Fatal(err)
	}
	e := sys.Engine(ini)
	mgr := NewManager(sys.Allocator, ini, e.Threads())
	mgr.Manage(buf)
	e.Phase("stream", []memsim.Access{{Buffer: buf, ReadBytes: 200 * gib}})
	mgr.Horizon = 3
	adv := mgr.Observe()
	a := adv[0]
	if a.Behaviour != BandwidthBound || a.Attr != memattr.Bandwidth {
		t.Fatalf("classification = %v", a.Behaviour)
	}
	if a.Target == nil || a.Target.Kind() != "MCDRAM" || !a.Migrate {
		t.Fatalf("advice = %+v (%s)", a, a.Reason)
	}
	if _, err := mgr.Apply(adv, e); err != nil {
		t.Fatal(err)
	}
	if buf.NodeNames() != "MCDRAM#4" {
		t.Fatalf("buffer on %s", buf.NodeNames())
	}
}

func TestFullTargetSkipped(t *testing.T) {
	sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ini := sys.InitiatorForGroup(0)
	// Fill the MCDRAM so the better target is infeasible.
	if _, err := sys.Machine.Alloc("hog", 4*gib, sys.Machine.NodeByOS(4)); err != nil {
		t.Fatal(err)
	}
	buf, _ := sys.Machine.Alloc("streamy", 2*gib, sys.Machine.NodeByOS(0))
	e := sys.Engine(ini)
	mgr := NewManager(sys.Allocator, ini, e.Threads())
	mgr.Manage(buf)
	e.Phase("stream", []memsim.Access{{Buffer: buf, ReadBytes: 200 * gib}})
	a := mgr.Observe()[0]
	if a.Migrate || a.Target != nil {
		t.Fatalf("full target should be skipped: %+v", a)
	}
}

func TestBehaviourString(t *testing.T) {
	if Idle.String() != "idle" || LatencyBound.String() != "latency-bound" ||
		BandwidthBound.String() != "bandwidth-bound" || Behaviour(9).String() != "unknown" {
		t.Fatal("behaviour names wrong")
	}
}

func TestManagerUsesAllocCandidates(t *testing.T) {
	// Sanity: the manager's target choice agrees with the allocator's
	// ranking machinery (no private ranking logic drifting apart).
	sys, ini, buf, e, mgr := rig(t)
	e.Phase("chase", []memsim.Access{{Buffer: buf, RandomReads: 400_000_000, MLP: 4}})
	a := mgr.Observe()[0]
	ranked, _, _, err := sys.Allocator.Candidates(memattr.Latency, ini, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Target == nil || a.Target.Obj != ranked[0].Target {
		t.Fatalf("manager target %v disagrees with allocator ranking %v", a.Target, ranked[0].Target)
	}
}
