// Package phases implements the paper's Section VII guidance on
// migration as a runtime component: "it should likely be avoided
// unless the application behavior changes significantly between
// phases, either by using different buffers, or by using the same
// buffers with different access patterns". A Manager watches the
// per-buffer hardware counters between phases, classifies each managed
// buffer's behaviour in the last phase (latency-bound, bandwidth-bound
// or idle), and advises a migration only when the estimated per-phase
// gain over the caller's remaining-phase horizon exceeds the estimated
// OS migration cost.
package phases

import (
	"fmt"

	"hetmem/internal/alloc"
	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
)

// Behaviour classifies what a buffer did during the last observed
// phase.
type Behaviour int

const (
	// Idle: the buffer was barely touched.
	Idle Behaviour = iota
	// LatencyBound: most of its misses were irregular.
	LatencyBound
	// BandwidthBound: its misses were streaming line fills.
	BandwidthBound
)

// String names the behaviour.
func (b Behaviour) String() string {
	switch b {
	case Idle:
		return "idle"
	case LatencyBound:
		return "latency-bound"
	case BandwidthBound:
		return "bandwidth-bound"
	default:
		return "unknown"
	}
}

// attrFor maps a behaviour to the attribute that should drive the
// buffer's placement while it lasts.
func (b Behaviour) attrFor() (memattr.ID, bool) {
	switch b {
	case LatencyBound:
		return memattr.Latency, true
	case BandwidthBound:
		return memattr.Bandwidth, true
	default:
		return 0, false
	}
}

type snapshot struct {
	llcMisses    uint64
	randomMisses uint64
}

// Advice is one recommendation from the manager.
type Advice struct {
	Buffer    *memsim.Buffer
	Behaviour Behaviour
	Attr      memattr.ID
	// Target is the recommended node (nil when no move is advised).
	Target *memsim.Node
	// GainPerPhase and Cost are the estimated seconds saved per
	// future phase and the one-off migration cost.
	GainPerPhase float64
	Cost         float64
	// Migrate is true when GainPerPhase × horizon > Cost.
	Migrate bool
	Reason  string
}

// Manager observes phases and advises migrations.
type Manager struct {
	a   *alloc.Allocator
	ini *bitmap.Bitmap
	// Horizon is the number of future phases the caller expects the
	// current behaviour to persist for (the paper's "unless the
	// application behavior changes significantly").
	Horizon int
	// MinMisses filters noise: buffers with fewer misses in the phase
	// are Idle.
	MinMisses uint64
	// AssumedMLP converts miss counts to time for the gain estimate.
	AssumedMLP float64

	threads int
	prev    map[*memsim.Buffer]snapshot
	managed []*memsim.Buffer
}

// NewManager creates a manager for buffers used by threads on the
// initiator cpuset.
func NewManager(a *alloc.Allocator, initiator *bitmap.Bitmap, threads int) *Manager {
	if threads <= 0 {
		threads = initiator.Weight()
	}
	return &Manager{
		a: a, ini: initiator.Copy(),
		Horizon: 1, MinMisses: 100_000, AssumedMLP: 8,
		threads: threads,
		prev:    make(map[*memsim.Buffer]snapshot),
	}
}

// Manage registers a buffer for observation.
func (m *Manager) Manage(b *memsim.Buffer) {
	m.managed = append(m.managed, b)
	m.prev[b] = snapshot{b.LLCMisses, b.RandomMisses}
}

// classify derives the behaviour from the counter delta.
func (m *Manager) classify(delta snapshot) Behaviour {
	if delta.llcMisses < m.MinMisses {
		return Idle
	}
	if float64(delta.randomMisses) >= 0.5*float64(delta.llcMisses) {
		return LatencyBound
	}
	return BandwidthBound
}

// Observe reads the counters accumulated since the last call and
// produces advice per managed buffer. It does not migrate anything;
// pass the advice to Apply (optionally filtered) for that.
func (m *Manager) Observe() []Advice {
	var out []Advice
	for _, b := range m.managed {
		last := m.prev[b]
		cur := snapshot{b.LLCMisses, b.RandomMisses}
		delta := snapshot{cur.llcMisses - last.llcMisses, cur.randomMisses - last.randomMisses}
		m.prev[b] = cur

		adv := Advice{Buffer: b, Behaviour: m.classify(delta)}
		attr, ok := adv.Behaviour.attrFor()
		if !ok {
			adv.Reason = "buffer idle in last phase"
			out = append(out, adv)
			continue
		}
		adv.Attr = attr
		target, gain, err := m.estimate(b, attr, delta)
		if err != nil {
			adv.Reason = err.Error()
			out = append(out, adv)
			continue
		}
		if target == nil {
			adv.Reason = "already on the best feasible target"
			out = append(out, adv)
			continue
		}
		adv.Target = target
		adv.GainPerPhase = gain
		adv.Cost = m.a.Machine().MigrationCost(b, target)
		horizon := m.Horizon
		if horizon < 1 {
			horizon = 1
		}
		if gain*float64(horizon) > adv.Cost {
			adv.Migrate = true
			adv.Reason = fmt.Sprintf("%.3fs/phase x %d phases > %.3fs copy", gain, horizon, adv.Cost)
		} else {
			adv.Reason = fmt.Sprintf("%.3fs/phase x %d phases does not amortize %.3fs copy", gain, horizon, adv.Cost)
		}
		out = append(out, adv)
	}
	return out
}

// estimate finds the best feasible target for attr and the per-phase
// gain of moving there, using the attribute registry's values.
func (m *Manager) estimate(b *memsim.Buffer, attr memattr.ID, delta snapshot) (*memsim.Node, float64, error) {
	ranked, used, _, err := m.a.Candidates(attr, m.ini, false)
	if err != nil {
		return nil, 0, err
	}
	reg := m.a.Registry()
	cur := b.Segments[0].Node
	curVal, err := reg.Value(used, cur.Obj, m.ini)
	if err != nil {
		return nil, 0, fmt.Errorf("phases: current node has no %s value", reg.Name(used))
	}
	for _, tv := range ranked {
		n := m.a.Machine().Node(tv.Target)
		if n == cur {
			return nil, 0, nil // already best among feasible
		}
		if n.Available() < b.Size {
			continue
		}
		// Feasible better target found: estimate the gain.
		var gain float64
		flags, _ := reg.Flags(used)
		if flags&memattr.LowerFirst != 0 {
			// Latency in ns: misses pay (cur - best) each, divided by
			// concurrency.
			diff := float64(curVal) - float64(tv.Value)
			if diff <= 0 {
				return nil, 0, nil
			}
			gain = float64(delta.randomMisses) * diff * 1e-9 / (float64(m.threads) * m.AssumedMLP)
		} else {
			// Bandwidth in MiB/s: traffic moves at the better rate.
			bytes := float64(delta.llcMisses) * 64
			curBW := float64(curVal) * float64(1<<20)
			bestBW := float64(tv.Value) * float64(1<<20)
			if bestBW <= curBW {
				return nil, 0, nil
			}
			gain = bytes/curBW - bytes/bestBW
		}
		return n, gain, nil
	}
	return nil, 0, nil
}

// Apply migrates per the advice (only entries with Migrate set),
// advancing the engine clock by the migration costs, and returns the
// total cost.
func (m *Manager) Apply(advice []Advice, e *memsim.Engine) (float64, error) {
	var total float64
	for _, adv := range advice {
		if !adv.Migrate || adv.Target == nil {
			continue
		}
		cost, err := m.a.Machine().Migrate(adv.Buffer, adv.Target)
		if err != nil {
			return total, err
		}
		e.AdvanceClock(cost)
		total += cost
	}
	return total, nil
}
