// Package ompspace implements OpenMP 5.0 memory spaces and allocator
// traits (omp_high_bw_mem_space, omp_low_lat_mem_space, ...) on top of
// the memory-attribute API, the runtime integration the paper names as
// its target ("These attributes also directly provide support for
// implementing the corresponding OpenMP 5.0 allocators and memory
// spaces"). A space is resolved *portably*: omp_high_bw_mem_space is
// "the local nodes whose bandwidth is close to the best", not a
// hardwired technology, so the same OpenMP code gets MCDRAM on KNL and
// DRAM on a Xeon without HBM.
package ompspace

import (
	"errors"
	"fmt"

	"hetmem/internal/alloc"
	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
)

// Space mirrors the omp_memspace_handle_t predefined spaces.
type Space int

const (
	// DefaultMem is omp_default_mem_space: the OS default node.
	DefaultMem Space = iota
	// LargeCapMem is omp_large_cap_mem_space.
	LargeCapMem
	// HighBWMem is omp_high_bw_mem_space.
	HighBWMem
	// LowLatMem is omp_low_lat_mem_space.
	LowLatMem
)

// String names the space like the OpenMP constants.
func (s Space) String() string {
	switch s {
	case DefaultMem:
		return "omp_default_mem_space"
	case LargeCapMem:
		return "omp_large_cap_mem_space"
	case HighBWMem:
		return "omp_high_bw_mem_space"
	case LowLatMem:
		return "omp_low_lat_mem_space"
	default:
		return fmt.Sprintf("Space(%d)", int(s))
	}
}

// attr maps a space to the attribute that defines it.
func (s Space) attr() (memattr.ID, error) {
	switch s {
	case LargeCapMem:
		return memattr.Capacity, nil
	case HighBWMem:
		return memattr.Bandwidth, nil
	case LowLatMem:
		return memattr.Latency, nil
	case DefaultMem:
		return memattr.Locality, nil
	default:
		return 0, fmt.Errorf("ompspace: unknown space %d", int(s))
	}
}

// Fallback mirrors the omp_atv_*_fb allocator trait values.
type Fallback int

const (
	// DefaultMemFB falls back to the default memory space
	// (omp_atv_default_mem_fb), the OpenMP default.
	DefaultMemFB Fallback = iota
	// NullFB returns ErrNullFallback (omp_atv_null_fb).
	NullFB
	// AbortFB returns ErrAbort (omp_atv_abort_fb; a real runtime would
	// terminate the program).
	AbortFB
)

// Errors.
var (
	// ErrNullFallback is the Go rendering of omp_alloc returning NULL.
	ErrNullFallback = errors.New("ompspace: allocation failed (null fallback)")
	// ErrAbort is the Go rendering of the abort fallback trait.
	ErrAbort = errors.New("ompspace: allocation failed (abort fallback)")
)

// Traits configures an OpenMP allocator.
type Traits struct {
	Fallback Fallback
}

// Allocator is an omp_allocator_handle_t bound to a space and traits.
type Allocator struct {
	space  Space
	traits Traits
	a      *alloc.Allocator
	ini    *bitmap.Bitmap
}

// closeFactor defines space membership: a node belongs to the space
// when its attribute value is within this factor of the best local
// value.
const closeFactor = 1.25

// NewAllocator creates an allocator for the space, as seen by threads
// on the initiator cpuset.
func NewAllocator(space Space, traits Traits, base *alloc.Allocator, initiator *bitmap.Bitmap) (*Allocator, error) {
	if _, err := space.attr(); err != nil {
		return nil, err
	}
	return &Allocator{space: space, traits: traits, a: base, ini: initiator.Copy()}, nil
}

// SpaceNodes resolves the space to its member nodes, best first.
func (al *Allocator) SpaceNodes() ([]*memsim.Node, error) {
	attr, err := al.space.attr()
	if err != nil {
		return nil, err
	}
	ranked, used, _, err := al.a.Candidates(attr, al.ini, false)
	if err != nil {
		return nil, err
	}
	if len(ranked) == 0 {
		return nil, fmt.Errorf("ompspace: %s resolves to no node", al.space)
	}
	flags, err := al.a.Registry().Flags(used)
	if err != nil {
		return nil, err
	}
	best := float64(ranked[0].Value)
	var out []*memsim.Node
	for _, tv := range ranked {
		v := float64(tv.Value)
		var in bool
		if flags&memattr.HigherFirst != 0 {
			in = v*closeFactor >= best
		} else {
			in = v <= best*closeFactor
		}
		if in {
			out = append(out, al.a.Machine().Node(tv.Target))
		}
	}
	return out, nil
}

// Alloc is omp_alloc: allocate within the space, applying the fallback
// trait on exhaustion.
func (al *Allocator) Alloc(name string, size uint64) (*memsim.Buffer, error) {
	nodes, err := al.SpaceNodes()
	if err != nil {
		return nil, err
	}
	m := al.a.Machine()
	for _, n := range nodes {
		if b, err := m.Alloc(name, size, n); err == nil {
			return b, nil
		} else if !errors.Is(err, memsim.ErrNoCapacity) {
			return nil, err
		}
	}
	switch al.traits.Fallback {
	case DefaultMemFB:
		if al.space == DefaultMem {
			return nil, fmt.Errorf("%w: default space exhausted", ErrNullFallback)
		}
		def, err := NewAllocator(DefaultMem, Traits{Fallback: NullFB}, al.a, al.ini)
		if err != nil {
			return nil, err
		}
		return def.Alloc(name, size)
	case NullFB:
		return nil, fmt.Errorf("%w: space %s", ErrNullFallback, al.space)
	case AbortFB:
		return nil, fmt.Errorf("%w: space %s", ErrAbort, al.space)
	default:
		return nil, fmt.Errorf("ompspace: unknown fallback trait %d", int(al.traits.Fallback))
	}
}

// Free is omp_free.
func (al *Allocator) Free(b *memsim.Buffer) error { return al.a.Machine().Free(b) }
