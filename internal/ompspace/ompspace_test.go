package ompspace

import (
	"errors"
	"testing"

	"hetmem/internal/alloc"
	"hetmem/internal/bench"
	"hetmem/internal/bitmap"
	"hetmem/internal/hmat"
	"hetmem/internal/memattr"
	"hetmem/internal/platform"
)

const gib = uint64(1) << 30

func knlBase(t *testing.T) (*alloc.Allocator, *bitmap.Bitmap) {
	t.Helper()
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	results, err := bench.MeasureAll(m, bench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := bench.Apply(results, reg); err != nil {
		t.Fatal(err)
	}
	return alloc.New(m, reg), bitmap.NewFromRange(0, 15)
}

func xeonBase(t *testing.T) (*alloc.Allocator, *bitmap.Bitmap) {
	t.Helper()
	p, err := platform.Get("xeon")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := hmat.Apply(p.HMATTable(), reg); err != nil {
		t.Fatal(err)
	}
	return alloc.New(m, reg), bitmap.NewFromRange(0, 19)
}

func TestSpaceNames(t *testing.T) {
	if HighBWMem.String() != "omp_high_bw_mem_space" || DefaultMem.String() != "omp_default_mem_space" {
		t.Fatal("space names wrong")
	}
}

func TestHighBWSpacePortable(t *testing.T) {
	// The same OpenMP space lands on MCDRAM on KNL and on DRAM on the
	// Xeon — the hardwired memkind baseline errors there instead.
	ka, kini := knlBase(t)
	al, err := NewAllocator(HighBWMem, Traits{}, ka, kini)
	if err != nil {
		t.Fatal(err)
	}
	b, err := al.Alloc("omp", gib)
	if err != nil {
		t.Fatal(err)
	}
	if b.Segments[0].Node.Kind() != "MCDRAM" {
		t.Fatalf("KNL high-bw space placed on %s", b.NodeNames())
	}
	al.Free(b)

	xa, xini := xeonBase(t)
	xl, err := NewAllocator(HighBWMem, Traits{}, xa, xini)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := xl.Alloc("omp", gib)
	if err != nil {
		t.Fatal(err)
	}
	if xb.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("Xeon high-bw space placed on %s", xb.NodeNames())
	}
}

func TestLargeCapAndLowLatSpaces(t *testing.T) {
	xa, xini := xeonBase(t)
	lc, _ := NewAllocator(LargeCapMem, Traits{}, xa, xini)
	b, err := lc.Alloc("big", 300*gib)
	if err != nil {
		t.Fatal(err)
	}
	if b.Segments[0].Node.Kind() != "NVDIMM" {
		t.Fatalf("large-cap placed on %s", b.NodeNames())
	}
	ll, _ := NewAllocator(LowLatMem, Traits{}, xa, xini)
	lb, err := ll.Alloc("lat", gib)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("low-lat placed on %s", lb.NodeNames())
	}
}

func TestDefaultSpace(t *testing.T) {
	ka, kini := knlBase(t)
	def, _ := NewAllocator(DefaultMem, Traits{}, ka, kini)
	b, err := def.Alloc("d", gib)
	if err != nil {
		t.Fatal(err)
	}
	if b.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("default space placed on %s", b.NodeNames())
	}
}

func TestFallbackTraits(t *testing.T) {
	// Fill the 4GB MCDRAM, then exercise each fallback trait.
	mk := func(fb Fallback) *Allocator {
		ka, kini := knlBase(t)
		al, err := NewAllocator(HighBWMem, Traits{Fallback: fb}, ka, kini)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := al.Alloc("fill", 4*gib); err != nil {
			t.Fatal(err)
		}
		return al
	}

	// omp_atv_default_mem_fb: spills to the default space (DRAM).
	al := mk(DefaultMemFB)
	b, err := al.Alloc("spill", gib)
	if err != nil {
		t.Fatal(err)
	}
	if b.Segments[0].Node.Kind() != "DRAM" {
		t.Fatalf("default fallback placed on %s", b.NodeNames())
	}

	// omp_atv_null_fb: returns the NULL error.
	al = mk(NullFB)
	if _, err := al.Alloc("spill", gib); !errors.Is(err, ErrNullFallback) {
		t.Fatalf("null fallback err = %v", err)
	}

	// omp_atv_abort_fb.
	al = mk(AbortFB)
	if _, err := al.Alloc("spill", gib); !errors.Is(err, ErrAbort) {
		t.Fatalf("abort fallback err = %v", err)
	}
}

func TestSpaceNodesMembership(t *testing.T) {
	ka, kini := knlBase(t)
	hb, _ := NewAllocator(HighBWMem, Traits{}, ka, kini)
	nodes, err := hb.SpaceNodes()
	if err != nil {
		t.Fatal(err)
	}
	// Only the MCDRAM is within 1.25x of the best local bandwidth.
	if len(nodes) != 1 || nodes[0].Kind() != "MCDRAM" {
		t.Fatalf("high-bw space nodes = %v", nodes)
	}
	// The low-latency space contains both KNL memories (latencies are
	// nearly identical) — which is exactly why the paper recommends
	// Latency as Graph500's criterion there: it does not waste MCDRAM.
	ll, _ := NewAllocator(LowLatMem, Traits{}, ka, kini)
	lnodes, err := ll.SpaceNodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(lnodes) != 2 {
		t.Fatalf("low-lat space nodes = %d, want 2", len(lnodes))
	}
}

func TestUnknownSpace(t *testing.T) {
	ka, kini := knlBase(t)
	if _, err := NewAllocator(Space(42), Traits{}, ka, kini); err == nil {
		t.Fatal("unknown space should fail")
	}
}

func TestSpaceStringAll(t *testing.T) {
	cases := map[Space]string{
		DefaultMem: "omp_default_mem_space", LargeCapMem: "omp_large_cap_mem_space",
		HighBWMem: "omp_high_bw_mem_space", LowLatMem: "omp_low_lat_mem_space",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d -> %q", s, s.String())
		}
	}
	if Space(42).String() != "Space(42)" {
		t.Errorf("unknown space = %q", Space(42).String())
	}
}

func TestDefaultSpaceExhaustion(t *testing.T) {
	// Even omp_atv_default_mem_fb cannot save an allocation that the
	// default space itself cannot hold.
	ka, kini := knlBase(t)
	al, err := NewAllocator(DefaultMem, Traits{Fallback: DefaultMemFB}, ka, kini)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := al.Alloc("huge", 4096*gib); !errors.Is(err, ErrNullFallback) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownFallbackTrait(t *testing.T) {
	ka, kini := knlBase(t)
	al, err := NewAllocator(HighBWMem, Traits{Fallback: Fallback(42)}, ka, kini)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := al.Alloc("fill", 4*gib); err != nil {
		t.Fatal(err)
	}
	if _, err := al.Alloc("spill", gib); err == nil {
		t.Fatal("unknown fallback should fail")
	}
}

func TestFreeThroughAllocator(t *testing.T) {
	ka, kini := knlBase(t)
	al, _ := NewAllocator(HighBWMem, Traits{}, ka, kini)
	b, err := al.Alloc("x", gib)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := al.Free(b); err == nil {
		t.Fatal("double free should fail")
	}
}
