package faults_test

import (
	"errors"
	"reflect"
	"testing"

	"hetmem/internal/faults"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

func xeonMachine(t *testing.T) *memsim.Machine {
	t.Helper()
	p, err := platform.Get("xeon")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInjectorDrivesMachine(t *testing.T) {
	m := xeonMachine(t)
	in := faults.NewInjector(faults.NewMachineTarget(m))
	os := m.Nodes()[0].OSIndex()

	var seen []faults.Kind
	in.Subscribe(func(ev faults.Event) { seen = append(seen, ev.Kind) })

	steps := []struct {
		ev    faults.Event
		check func() bool
	}{
		{faults.Event{NodeOS: os, Kind: faults.Offline}, func() bool { return m.NodeByOS(os).Offline() }},
		{faults.Event{NodeOS: os, Kind: faults.Online}, func() bool { return !m.NodeByOS(os).Offline() }},
		{faults.Event{NodeOS: os, Kind: faults.Degrade, BWFactor: 0.5, LatFactor: 2}, func() bool { return m.NodeByOS(os).Degraded() }},
		{faults.Event{NodeOS: os, Kind: faults.Restore}, func() bool { return !m.NodeByOS(os).Degraded() }},
		{faults.Event{NodeOS: os, Kind: faults.Shrink, CapacityLimit: 4096}, func() bool { return m.NodeByOS(os).EffectiveCapacity() == 4096 }},
		{faults.Event{NodeOS: os, Kind: faults.Shrink, CapacityLimit: 0}, func() bool { return m.NodeByOS(os).EffectiveCapacity() == m.NodeByOS(os).Capacity() }},
	}
	for i, s := range steps {
		if err := in.Apply(s.ev); err != nil {
			t.Fatalf("step %d (%s): %v", i, s.ev, err)
		}
		if !s.check() {
			t.Fatalf("step %d (%s): machine state not applied", i, s.ev)
		}
	}
	if len(seen) != len(steps) {
		t.Fatalf("subscriber saw %d events, want %d", len(seen), len(steps))
	}
	if len(in.Log()) != len(steps) {
		t.Fatalf("log holds %d events, want %d", len(in.Log()), len(steps))
	}

	if err := in.Apply(faults.Event{NodeOS: 9999, Kind: faults.Offline}); !errors.Is(err, faults.ErrUnknownNode) {
		t.Fatalf("unknown node: %v, want ErrUnknownNode", err)
	}
}

func TestTransientEventArmsFailures(t *testing.T) {
	m := xeonMachine(t)
	in := faults.NewInjector(faults.NewMachineTarget(m))
	n := m.Nodes()[0]

	if err := in.Apply(faults.Event{NodeOS: n.OSIndex(), Kind: faults.Transient, Failures: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc("x", 4096, n); !errors.Is(err, memsim.ErrTransient) {
		t.Fatalf("alloc = %v, want ErrTransient", err)
	}
	if _, err := m.Alloc("x", 4096, n); err != nil {
		t.Fatalf("alloc after fault drained: %v", err)
	}
}

func TestRandomPlanDeterministicAndSafe(t *testing.T) {
	m := xeonMachine(t)
	var nodes []int
	caps := map[int]uint64{}
	for _, n := range m.Nodes() {
		nodes = append(nodes, n.OSIndex())
		caps[n.OSIndex()] = n.Capacity()
	}

	p1 := faults.RandomPlan(42, 200, nodes, faults.RandomOptions{Capacities: caps})
	p2 := faults.RandomPlan(42, 200, nodes, faults.RandomOptions{Capacities: caps})
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed produced different plans")
	}
	p3 := faults.RandomPlan(43, 200, nodes, faults.RandomOptions{Capacities: caps})
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds produced identical plans")
	}

	// Replaying the plan never offlines every node, and ends nominal.
	offline := map[int]bool{}
	for _, ev := range p1.Events {
		switch ev.Kind {
		case faults.Offline:
			offline[ev.NodeOS] = true
			if len(offline) >= len(nodes) {
				t.Fatalf("plan offlined every node at %s", ev)
			}
		case faults.Online:
			delete(offline, ev.NodeOS)
		}
	}

	// Run it for real: afterwards the machine must be fully healed.
	in := faults.NewInjector(faults.NewMachineTarget(m))
	if err := in.Run(p1); err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Nodes() {
		if n.Offline() || n.Degraded() || n.EffectiveCapacity() != n.Capacity() {
			t.Fatalf("node %s#%d not nominal after full plan", n.Kind(), n.OSIndex())
		}
	}
}

func TestHealAll(t *testing.T) {
	m := xeonMachine(t)
	in := faults.NewInjector(faults.NewMachineTarget(m))
	for _, n := range m.Nodes() {
		os := n.OSIndex()
		if err := in.Apply(faults.Event{NodeOS: os, Kind: faults.Offline}); err != nil {
			t.Fatal(err)
		}
		if err := in.Apply(faults.Event{NodeOS: os, Kind: faults.Degrade, BWFactor: 0.1, LatFactor: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.HealAll(); err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Nodes() {
		if n.Offline() || n.Degraded() {
			t.Fatalf("node %s#%d not healed", n.Kind(), n.OSIndex())
		}
	}
}
