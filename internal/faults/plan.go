package faults

import (
	"math/rand"
	"sort"
)

// Plan is an ordered fault script. Build one programmatically, or let
// RandomPlan generate a reproducible chaos scenario from a seed.
type Plan struct {
	Events []Event
}

// Steps returns the highest step number in the plan (-1 when empty).
func (p Plan) Steps() int {
	max := -1
	for _, ev := range p.Events {
		if ev.Step > max {
			max = ev.Step
		}
	}
	return max
}

// StepEvents returns the events of one step, in plan order.
func (p Plan) StepEvents(step int) []Event {
	var out []Event
	for _, ev := range p.Events {
		if ev.Step == step {
			out = append(out, ev)
		}
	}
	return out
}

// RandomOptions tunes RandomPlan.
type RandomOptions struct {
	// MaxConcurrentOffline bounds how many nodes may be down at once;
	// RandomPlan additionally never offlines the last online node, so
	// the machine always has somewhere to place or evacuate to.
	// Default: half the nodes.
	MaxConcurrentOffline int
	// TransientBurst is the failure count armed by a Transient event.
	// Default 3.
	TransientBurst int
	// Capacities maps node OS index to capacity in bytes; when set,
	// Shrink events draw a limit in 30–90% of the node's capacity.
	// Without it the planner cannot size shrinks and emits transient
	// faults instead.
	Capacities map[int]uint64
}

// RandomPlan generates a deterministic chaos scenario: steps fault
// events over the given nodes, drawn from a seeded source. Every fault
// it opens (offline, degrade, shrink) it eventually closes, and the
// final steps heal everything, so a full run ends with a nominal
// machine. At least one node stays online at every point.
func RandomPlan(seed int64, steps int, nodeOS []int, opts RandomOptions) Plan {
	rng := rand.New(rand.NewSource(seed))
	nodes := append([]int(nil), nodeOS...)
	sort.Ints(nodes)

	maxOff := opts.MaxConcurrentOffline
	if maxOff <= 0 {
		maxOff = len(nodes) / 2
	}
	if maxOff >= len(nodes) {
		maxOff = len(nodes) - 1
	}
	burst := opts.TransientBurst
	if burst <= 0 {
		burst = 3
	}

	offline := map[int]bool{}
	degraded := map[int]bool{}
	shrunk := map[int]bool{}
	var p Plan
	add := func(step int, ev Event) {
		ev.Step = step
		p.Events = append(p.Events, ev)
	}

	for step := 0; step < steps; step++ {
		node := nodes[rng.Intn(len(nodes))]
		switch choice := rng.Intn(10); {
		case choice < 3: // offline / online toggle
			if offline[node] {
				add(step, Event{NodeOS: node, Kind: Online})
				delete(offline, node)
			} else if len(offline) < maxOff {
				add(step, Event{NodeOS: node, Kind: Offline})
				offline[node] = true
			} else {
				// At the offline budget: recover the longest-down node
				// instead (deterministic: smallest OS index).
				victim := -1
				for os := range offline {
					if victim < 0 || os < victim {
						victim = os
					}
				}
				add(step, Event{NodeOS: victim, Kind: Online})
				delete(offline, victim)
			}
		case choice < 6: // degrade / restore toggle
			if degraded[node] {
				add(step, Event{NodeOS: node, Kind: Restore})
				delete(degraded, node)
			} else {
				add(step, Event{
					NodeOS:    node,
					Kind:      Degrade,
					BWFactor:  0.2 + 0.6*rng.Float64(), // 0.2–0.8 of nominal bandwidth
					LatFactor: 1.5 + 2.5*rng.Float64(), // 1.5–4× nominal latency
				})
				degraded[node] = true
			}
		case choice < 8: // capacity shrink / restore toggle
			if shrunk[node] {
				add(step, Event{NodeOS: node, Kind: Shrink, CapacityLimit: 0})
				delete(shrunk, node)
			} else if cap, ok := opts.Capacities[node]; ok && cap > 0 {
				frac := 0.3 + 0.6*rng.Float64() // keep 30–90% of capacity
				add(step, Event{NodeOS: node, Kind: Shrink, CapacityLimit: uint64(frac * float64(cap))})
				shrunk[node] = true
			} else {
				add(step, Event{NodeOS: node, Kind: Transient, Failures: burst})
			}
		default: // transient alloc faults
			add(step, Event{NodeOS: node, Kind: Transient, Failures: burst})
		}
	}

	// Close every open fault so the plan ends nominal.
	heal := steps
	for _, os := range nodes {
		if offline[os] {
			add(heal, Event{NodeOS: os, Kind: Online})
		}
		if degraded[os] {
			add(heal, Event{NodeOS: os, Kind: Restore})
		}
		if shrunk[os] {
			add(heal, Event{NodeOS: os, Kind: Shrink, CapacityLimit: 0})
		}
	}
	return p
}
