// Package faults injects the failure modes real tiered-memory systems
// exhibit into a simulated machine: NUMA nodes going offline and coming
// back, tiers degrading under contention (bandwidth/latency
// multipliers), capacity shrinking out from under the allocator, and
// transient allocation errors.
//
// Everything is deterministic and seedable. A Plan is an ordered script
// of Events; an Injector applies events to a Target (usually a
// memsim.Machine via NewMachineTarget) and notifies subscribers — the
// placement daemon subscribes its health state machine, so injected
// faults drive the same re-ranking, auto-migration, and load-shedding
// paths a production monitor would.
//
// Tests and the `hetmemd chaostest` subcommand script scenarios through
// the same small Target interface, so chaos runs and unit tests share
// one fault vocabulary.
package faults

import (
	"errors"
	"fmt"
	"sync"

	"hetmem/internal/memsim"
)

// Kind enumerates fault event types.
type Kind int

// The fault kinds.
const (
	// Offline takes a node out of service: no new allocations land on
	// it until an Online event.
	Offline Kind = iota
	// Online brings a node back to service.
	Online
	// Degrade scales a node's delivered bandwidth (by BWFactor < 1)
	// and latency (by LatFactor > 1).
	Degrade
	// Restore resets a node's performance to nominal.
	Restore
	// Shrink caps a node's capacity at CapacityLimit bytes
	// (CapacityLimit 0 restores the full capacity).
	Shrink
	// Transient makes the node's next Failures allocations fail with a
	// retryable error.
	Transient
)

var kindNames = map[Kind]string{
	Offline:   "offline",
	Online:    "online",
	Degrade:   "degrade",
	Restore:   "restore",
	Shrink:    "shrink",
	Transient: "transient",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scripted fault.
type Event struct {
	// Step orders events within a Plan; events sharing a step fire
	// together.
	Step int
	// NodeOS is the OS index of the NUMA node the event targets.
	NodeOS int
	Kind   Kind

	// BWFactor and LatFactor parameterize Degrade.
	BWFactor, LatFactor float64
	// CapacityLimit parameterizes Shrink (0 = restore full capacity).
	CapacityLimit uint64
	// Failures parameterizes Transient.
	Failures int
}

func (e Event) String() string {
	switch e.Kind {
	case Degrade:
		return fmt.Sprintf("step %d: node %d %s bw×%.2f lat×%.2f", e.Step, e.NodeOS, e.Kind, e.BWFactor, e.LatFactor)
	case Shrink:
		return fmt.Sprintf("step %d: node %d %s to %d bytes", e.Step, e.NodeOS, e.Kind, e.CapacityLimit)
	case Transient:
		return fmt.Sprintf("step %d: node %d %s ×%d", e.Step, e.NodeOS, e.Kind, e.Failures)
	default:
		return fmt.Sprintf("step %d: node %d %s", e.Step, e.NodeOS, e.Kind)
	}
}

// ErrUnknownNode is returned when an event names a node the target
// does not have.
var ErrUnknownNode = errors.New("faults: unknown node")

// Target is the injection surface. memsim.Machine satisfies it via
// NewMachineTarget; tests can substitute fakes.
type Target interface {
	// NodeOSIndexes lists the injectable nodes.
	NodeOSIndexes() []int
	// SetOffline takes the node out of (or back into) service.
	SetOffline(nodeOS int, offline bool) error
	// SetPerfFactors scales the node's bandwidth and latency.
	SetPerfFactors(nodeOS int, bw, lat float64) error
	// SetCapacityLimit caps the node's capacity (0 = full).
	SetCapacityLimit(nodeOS int, limit uint64) error
	// InjectAllocFailures arms n transient allocation failures.
	InjectAllocFailures(nodeOS int, n int) error
}

// machineTarget adapts a memsim.Machine to the Target interface.
type machineTarget struct{ m *memsim.Machine }

// NewMachineTarget wraps a simulated machine as an injection target.
func NewMachineTarget(m *memsim.Machine) Target { return machineTarget{m} }

func (t machineTarget) NodeOSIndexes() []int {
	nodes := t.m.Nodes()
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = n.OSIndex()
	}
	return out
}

func (t machineTarget) node(os int) (*memsim.Node, error) {
	n := t.m.NodeByOS(os)
	if n == nil {
		return nil, fmt.Errorf("%w: P#%d", ErrUnknownNode, os)
	}
	return n, nil
}

func (t machineTarget) SetOffline(os int, offline bool) error {
	n, err := t.node(os)
	if err != nil {
		return err
	}
	n.SetOffline(offline)
	return nil
}

func (t machineTarget) SetPerfFactors(os int, bw, lat float64) error {
	n, err := t.node(os)
	if err != nil {
		return err
	}
	n.SetPerfFactors(bw, lat)
	return nil
}

func (t machineTarget) SetCapacityLimit(os int, limit uint64) error {
	n, err := t.node(os)
	if err != nil {
		return err
	}
	n.SetCapacityLimit(limit)
	return nil
}

func (t machineTarget) InjectAllocFailures(os int, count int) error {
	n, err := t.node(os)
	if err != nil {
		return err
	}
	if count > 0 {
		n.InjectAllocFailures(uint64(count))
	}
	return nil
}

// Injector applies events to a target, keeps a log, and fans events out
// to subscribers. Apply is safe for concurrent use.
type Injector struct {
	target Target

	mu   sync.Mutex
	subs []func(Event)
	log  []Event
}

// NewInjector creates an injector over a target.
func NewInjector(t Target) *Injector { return &Injector{target: t} }

// Subscribe registers a callback invoked synchronously (in Apply's
// goroutine) for every successfully applied event. Subscribe before
// the first Apply; subscribing concurrently with Apply is safe but the
// new subscriber only sees subsequent events.
func (in *Injector) Subscribe(fn func(Event)) {
	in.mu.Lock()
	in.subs = append(in.subs, fn)
	in.mu.Unlock()
}

// Apply injects one event into the target, logs it, and notifies
// subscribers. The target mutation happens before subscribers run, so
// a subscriber observing the machine sees the post-event state.
func (in *Injector) Apply(ev Event) error {
	var err error
	switch ev.Kind {
	case Offline:
		err = in.target.SetOffline(ev.NodeOS, true)
	case Online:
		err = in.target.SetOffline(ev.NodeOS, false)
	case Degrade:
		err = in.target.SetPerfFactors(ev.NodeOS, ev.BWFactor, ev.LatFactor)
	case Restore:
		err = in.target.SetPerfFactors(ev.NodeOS, 0, 0)
	case Shrink:
		err = in.target.SetCapacityLimit(ev.NodeOS, ev.CapacityLimit)
	case Transient:
		err = in.target.InjectAllocFailures(ev.NodeOS, ev.Failures)
	default:
		err = fmt.Errorf("faults: unknown event kind %v", ev.Kind)
	}
	if err != nil {
		return err
	}
	in.mu.Lock()
	in.log = append(in.log, ev)
	subs := make([]func(Event), len(in.subs))
	copy(subs, in.subs)
	in.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
	return nil
}

// Run applies a whole plan in order, stopping at the first error.
func (in *Injector) Run(p Plan) error {
	for _, ev := range p.Events {
		if err := in.Apply(ev); err != nil {
			return err
		}
	}
	return nil
}

// HealAll brings every node of the target back to nominal: online,
// full capacity, nominal performance. Pending transient failures are
// not cleared (they drain on the next allocations).
func (in *Injector) HealAll() error {
	for _, os := range in.target.NodeOSIndexes() {
		for _, ev := range []Event{
			{NodeOS: os, Kind: Online},
			{NodeOS: os, Kind: Restore},
			{NodeOS: os, Kind: Shrink, CapacityLimit: 0},
		} {
			if err := in.Apply(ev); err != nil {
				return err
			}
		}
	}
	return nil
}

// Log returns a copy of all applied events in order.
func (in *Injector) Log() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.log))
	copy(out, in.log)
	return out
}
