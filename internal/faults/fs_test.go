package faults_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hetmem/internal/faults"
)

func openRW(t *testing.T, fs faults.FS, path string) faults.File {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestOSPassthrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f := openRW(t, faults.OS, path)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	renamed := path + ".2"
	if err := faults.OS.Rename(path, renamed); err != nil {
		t.Fatal(err)
	}
	st, err := faults.OS.Stat(renamed)
	if err != nil || st.Size() != 5 {
		t.Fatalf("stat after rename: %v, size %v", err, st)
	}
	if err := faults.OS.Remove(renamed); err != nil {
		t.Fatal(err)
	}
}

func TestInjectedSyncFailure(t *testing.T) {
	ffs := faults.NewFaultFS(faults.OS, 1)
	f := openRW(t, ffs, filepath.Join(t.TempDir(), "f"))
	defer f.Close()

	ffs.FailSyncs(2)
	for i := 0; i < 2; i++ {
		if err := f.Sync(); !errors.Is(err, faults.ErrInjectedSync) {
			t.Fatalf("sync %d: %v, want ErrInjectedSync", i, err)
		}
	}
	// Disarmed: the third sync is real.
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after faults drained: %v", err)
	}
	if syncs, _, _, _ := ffs.Delivered(); syncs != 2 {
		t.Fatalf("delivered %d sync faults, want 2", syncs)
	}
}

func TestInjectedShortWriteTearsPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := faults.NewFaultFS(faults.OS, 42)
	path := filepath.Join(dir, "f")
	f := openRW(t, ffs, path)
	defer f.Close()

	payload := []byte("0123456789abcdef")
	ffs.ShortWrites(1)
	n, err := f.Write(payload)
	if !errors.Is(err, faults.ErrInjectedShortWrite) {
		t.Fatalf("torn write: n=%d err=%v, want ErrInjectedShortWrite", n, err)
	}
	if n >= len(payload) {
		t.Fatalf("torn write persisted %d of %d bytes; want a strict prefix", n, len(payload))
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() != int64(n) {
		t.Fatalf("on-disk size %v after torn write of %d bytes", st.Size(), n)
	}
	// The next write is whole again.
	if n, err := f.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("write after fault drained: n=%d err=%v", n, err)
	}
}

func TestInjectedWriteFailurePersistsNothing(t *testing.T) {
	dir := t.TempDir()
	ffs := faults.NewFaultFS(faults.OS, 3)
	path := filepath.Join(dir, "f")
	f := openRW(t, ffs, path)
	defer f.Close()

	ffs.FailWrites(1)
	if n, err := f.Write([]byte("doomed")); n != 0 || !errors.Is(err, faults.ErrInjectedWrite) {
		t.Fatalf("failed write: n=%d err=%v", n, err)
	}
	if st, _ := os.Stat(path); st.Size() != 0 {
		t.Fatalf("failed write left %d bytes on disk", st.Size())
	}
}

func TestInjectedReadBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	want := []byte("the quick brown fox jumps over the lazy dog")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}

	ffs := faults.NewFaultFS(faults.OS, 7)
	f := openRW(t, ffs, path)
	defer f.Close()

	ffs.FlipReadBits(1)
	got := make([]byte, len(want))
	if _, err := f.Read(got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range want {
		if got[i] != want[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip corrupted %d bytes, want exactly 1", diff)
	}
	// Subsequent reads are clean.
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, len(want))
	if _, err := f.Read(got2); err != nil {
		t.Fatal(err)
	}
	if string(got2) != string(want) {
		t.Fatal("read after fault drained still corrupt")
	}
}

func TestClearDisarmsEverything(t *testing.T) {
	ffs := faults.NewFaultFS(faults.OS, 1)
	ffs.FailSyncs(5)
	ffs.ShortWrites(5)
	ffs.FailWrites(5)
	ffs.FlipReadBits(5)
	ffs.Clear()

	f := openRW(t, ffs, filepath.Join(t.TempDir(), "f"))
	defer f.Close()
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after Clear: %v", err)
	}
}
