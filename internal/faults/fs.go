package faults

// This file extends the fault vocabulary from memory hardware to the
// disk under the daemon's durable state: an FS interface the journal
// and snapshot writer route every byte through, plus a fault-injecting
// implementation that returns fsync errors, tears writes short, and
// flips bits on reads. Chaos tests arm these against the write-ahead
// log and checkpoint files to prove recovery never loses an
// acknowledged allocation and never resurrects a freed lease.

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"sync"
)

// File is the subset of *os.File the durable-state layer needs. Writes
// and reads go through it so faults can be injected between the
// journal and the disk.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	// Stat reports the file's metadata.
	Stat() (os.FileInfo, error)
}

// FS is the filesystem surface of the durable-state layer: everything
// internal/journal does to disk goes through one of these. OS is the
// real thing; NewFaultFS wraps any FS with injectable disk faults.
type FS interface {
	// OpenFile opens name like os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically renames oldpath to newpath (both on the same
	// filesystem), the primitive checkpoint publication relies on.
	Rename(oldpath, newpath string) error
	// Remove deletes a file; removing a missing file is the caller's
	// error to classify (os.IsNotExist).
	Remove(name string) error
	// Stat reports a file's metadata.
	Stat(name string) (os.FileInfo, error)
}

// osFS is the real filesystem.
type osFS struct{}

// OS is the passthrough FS backed by package os.
var OS FS = osFS{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error) {
	return os.Stat(name)
}

// The injected error values. They are distinct sentinels so tests can
// tell an injected fault apart from a real one.
var (
	// ErrInjectedSync is returned by Sync when a sync fault is armed;
	// the data may or may not have reached the media — exactly the
	// ambiguity a real fsync failure leaves.
	ErrInjectedSync = errors.New("faults: injected fsync failure")
	// ErrInjectedShortWrite is returned by Write after persisting only
	// a prefix of the buffer — a torn write.
	ErrInjectedShortWrite = errors.New("faults: injected short write")
	// ErrInjectedWrite is returned by Write with nothing persisted.
	ErrInjectedWrite = errors.New("faults: injected write failure")
)

// FaultFS wraps an FS with armable disk faults. Arm methods take a
// count: the next n matching operations misbehave, then the FS is
// transparent again. All methods are safe for concurrent use; the
// fault stream is deterministic for a given seed and operation order.
type FaultFS struct {
	inner FS

	mu          sync.Mutex
	rng         *rand.Rand
	syncFails   int // next n Syncs fail (without syncing)
	shortWrites int // next n Writes persist only a prefix
	writeFails  int // next n Writes fail outright
	readFlips   int // next n non-empty Reads have one bit flipped

	// Counters of faults actually delivered.
	syncsFailed   int
	writesShorted int
	writesFailed  int
	readsFlipped  int
}

// NewFaultFS wraps inner with a fault controller seeded for
// deterministic bit-flip positions and tear points.
func NewFaultFS(inner FS, seed int64) *FaultFS {
	return &FaultFS{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// FailSyncs arms n fsync failures.
func (f *FaultFS) FailSyncs(n int) { f.mu.Lock(); f.syncFails += n; f.mu.Unlock() }

// ShortWrites arms n torn writes: each persists a strict prefix (at
// least one byte short) and returns ErrInjectedShortWrite.
func (f *FaultFS) ShortWrites(n int) { f.mu.Lock(); f.shortWrites += n; f.mu.Unlock() }

// FailWrites arms n writes that fail without persisting anything.
func (f *FaultFS) FailWrites(n int) { f.mu.Lock(); f.writeFails += n; f.mu.Unlock() }

// FlipReadBits arms n reads that each return the real data with one
// bit flipped — silent media corruption the CRC layer must catch.
func (f *FaultFS) FlipReadBits(n int) { f.mu.Lock(); f.readFlips += n; f.mu.Unlock() }

// Clear disarms every pending fault.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	f.syncFails, f.shortWrites, f.writeFails, f.readFlips = 0, 0, 0, 0
	f.mu.Unlock()
}

// Delivered reports how many faults of each kind actually fired.
func (f *FaultFS) Delivered() (syncs, shortWrites, writeFails, readFlips int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncsFailed, f.writesShorted, f.writesFailed, f.readsFlipped
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{ctl: f, File: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }
func (f *FaultFS) Remove(name string) error             { return f.inner.Remove(name) }
func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	return f.inner.Stat(name)
}

// faultFile consults the shared controller on every operation.
type faultFile struct {
	ctl *FaultFS
	File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.ctl
	f.mu.Lock()
	switch {
	case f.writeFails > 0:
		f.writeFails--
		f.writesFailed++
		f.mu.Unlock()
		return 0, ErrInjectedWrite
	case f.shortWrites > 0 && len(p) > 0:
		f.shortWrites--
		f.writesShorted++
		cut := f.rng.Intn(len(p)) // strict prefix: 0..len-1 bytes land
		f.mu.Unlock()
		n, err := ff.File.Write(p[:cut])
		if err != nil {
			return n, err
		}
		return n, ErrInjectedShortWrite
	}
	f.mu.Unlock()
	return ff.File.Write(p)
}

func (ff *faultFile) Read(p []byte) (int, error) {
	n, err := ff.File.Read(p)
	if n > 0 {
		f := ff.ctl
		f.mu.Lock()
		if f.readFlips > 0 {
			f.readFlips--
			f.readsFlipped++
			bit := f.rng.Intn(n * 8)
			p[bit/8] ^= 1 << (bit % 8)
		}
		f.mu.Unlock()
	}
	return n, err
}

func (ff *faultFile) Sync() error {
	f := ff.ctl
	f.mu.Lock()
	if f.syncFails > 0 {
		f.syncFails--
		f.syncsFailed++
		f.mu.Unlock()
		return ErrInjectedSync
	}
	f.mu.Unlock()
	return ff.File.Sync()
}
