package tenant

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestParseClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
	}{
		{"guaranteed", Guaranteed},
		{"burstable", Burstable},
		{"best-effort", BestEffort},
	} {
		got, err := ParseClass(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseClass(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("round trip: %v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseClass("platinum"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
}

func TestChargeQuotaBoundary(t *testing.T) {
	r := NewRegistry()
	tn := r.Define("capped", BestEffort, map[string]uint64{"DRAM": 100, "HBM": 0})

	// Exactly consuming the quota is allowed.
	if err := tn.Charge("DRAM", 100); err != nil {
		t.Fatalf("charge to exact quota: %v", err)
	}
	if got := tn.Used("DRAM"); got != 100 {
		t.Fatalf("used = %d, want 100", got)
	}
	if rem, limited := tn.Remaining("DRAM"); !limited || rem != 0 {
		t.Fatalf("remaining = %d,%v, want 0,true", rem, limited)
	}

	// One more byte is rejected with a QuotaError naming tenant, kind,
	// and limit, and changes nothing.
	err := tn.Charge("DRAM", 1)
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over-quota charge: %v, want ErrOverQuota", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("error %T is not *QuotaError", err)
	}
	if qe.Tenant != "capped" || qe.Kind != "DRAM" || qe.Limit != 100 {
		t.Fatalf("QuotaError = %+v", qe)
	}
	for _, want := range []string{"capped", "DRAM", "100"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if got := tn.Used("DRAM"); got != 100 {
		t.Fatalf("failed charge mutated usage: %d", got)
	}
	if got := tn.QuotaRejects.Load(); got != 1 {
		t.Fatalf("quota rejects = %d, want 1", got)
	}

	// A zero quota forbids the kind entirely.
	if err := tn.Charge("HBM", 1); !errors.Is(err, ErrOverQuota) {
		t.Fatalf("zero-quota kind admitted: %v", err)
	}
	// Unlimited kinds always charge.
	if err := tn.Charge("NVDIMM", 1 << 40); err != nil {
		t.Fatalf("unlimited kind rejected: %v", err)
	}

	// Refund floors at zero.
	tn.Refund("DRAM", 40)
	tn.Refund("DRAM", 1000)
	if got := tn.Used("DRAM"); got != 0 {
		t.Fatalf("refund floor: used = %d", got)
	}

	// ForceCharge ignores the limit (migration/replay accounting).
	tn.ForceCharge("HBM", 7)
	if got := tn.Used("HBM"); got != 7 {
		t.Fatalf("force charge: used = %d", got)
	}
}

func TestChargeConcurrent(t *testing.T) {
	r := NewRegistry()
	tn := r.Define("c", Burstable, map[string]uint64{"DRAM": 1000})
	var wg sync.WaitGroup
	var admitted sync.Map
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if tn.Charge("DRAM", 10) == nil {
					admitted.Store([2]int{i, j}, struct{}{})
				}
			}
		}(i)
	}
	wg.Wait()
	n := 0
	admitted.Range(func(_, _ any) bool { n++; return true })
	// Quota 1000 at 10 bytes each: exactly 100 charges can succeed.
	if n != 100 {
		t.Fatalf("admitted %d charges, want 100", n)
	}
	if got := tn.Used("DRAM"); got != 1000 {
		t.Fatalf("used = %d, want 1000", got)
	}
}

func TestRegistryAutoRegister(t *testing.T) {
	r := NewRegistry()
	// Empty name resolves to the default tenant.
	if got := r.Get(""); got.Name != Default {
		t.Fatalf("Get(\"\") = %q", got.Name)
	}
	// Unknown names auto-register with the default class, no quotas.
	tn := r.Get("walk-in")
	if tn.Class != Burstable || tn.Limited() {
		t.Fatalf("auto-registered tenant = class %v limited %v", tn.Class, tn.Limited())
	}
	if again := r.Get("walk-in"); again != tn {
		t.Fatal("auto-registration is not stable")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != Default || names[1] != "walk-in" {
		t.Fatalf("names = %v", names)
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	doc := `{
  "default_class": "best-effort",
  "tenants": {
    "gold":  {"class": "guaranteed"},
    "noise": {"class": "best-effort", "quotas": {"DRAM": 1048576, "HBM": 0}}
  }
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.Load(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	if got := r.Get("gold").Class; got != Guaranteed {
		t.Fatalf("gold class = %v", got)
	}
	noise := r.Get("noise")
	if lim, ok := noise.Quota("DRAM"); !ok || lim != 1048576 {
		t.Fatalf("noise DRAM quota = %d,%v", lim, ok)
	}
	// default_class applies to auto-registered walk-ins.
	if got := r.Get("stranger").Class; got != BestEffort {
		t.Fatalf("walk-in class = %v, want best-effort", got)
	}

	// Bad class never half-applies.
	r2 := NewRegistry()
	err := r2.LoadBytes([]byte(`{"tenants": {"a": {"class": "guaranteed"}, "b": {"class": "nope"}}}`))
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("bad class: %v", err)
	}
	if len(r2.Names()) != 1 { // just "default"
		t.Fatalf("bad config half-applied: %v", r2.Names())
	}
	// Unknown fields are rejected (config typos must not silently noop).
	if err := r2.LoadBytes([]byte(`{"tenants": {"a": {"class": "burstable", "quota": {}}}}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := r2.Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWriteMetricsDeterministic(t *testing.T) {
	r := NewRegistry()
	g := r.Define("gold", Guaranteed, nil)
	g.ForceCharge("DRAM", 64)
	g.ForceCharge("HBM", 32)
	g.Sheds.Add(0)
	n := r.Define("noise", BestEffort, map[string]uint64{"DRAM": 100})
	if err := n.Charge("DRAM", 100); err != nil {
		t.Fatal(err)
	}
	n.Charge("DRAM", 1) // rejected
	var a, b bytes.Buffer
	r.WriteMetrics(&a)
	r.WriteMetrics(&b)
	if a.String() != b.String() {
		t.Fatal("WriteMetrics is not deterministic")
	}
	for _, want := range []string{
		`hetmemd_tenant_bytes{tenant="gold",kind="DRAM"} 64`,
		`hetmemd_tenant_bytes{tenant="gold",kind="HBM"} 32`,
		`hetmemd_tenant_bytes{tenant="noise",kind="DRAM"} 100`,
		`hetmemd_tenant_quota_rejects_total{tenant="noise"} 1`,
		`hetmemd_tenant_sheds_total{tenant="default"} 0`,
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, a.String())
		}
	}
}

func TestSnapshotAndTotals(t *testing.T) {
	r := NewRegistry()
	g := r.Define("g", Guaranteed, nil)
	g.ForceCharge("DRAM", 10)
	g.ForceCharge("NVDIMM", 5)
	totals := r.TotalBytes()
	if totals["g"] != 15 {
		t.Fatalf("totals = %v", totals)
	}
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != Default || snap[1].Name != "g" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[1].Bytes["DRAM"] != 10 || snap[1].Class != "guaranteed" {
		t.Fatalf("snapshot[g] = %+v", snap[1])
	}
}
