// Package tenant is hetmemd's multi-tenant QoS registry: named tenants
// with a priority class (guaranteed / burstable / best-effort) and
// per-memory-kind byte quotas (DRAM/HBM/NVDIMM/...), plus the per-tenant
// usage accounting and QoS counters the admission path and /metrics
// report from.
//
// The registry is the single source of truth for "who may use how much
// of which kind". Charging is atomic per (tenant, kind): a Charge that
// would exceed the quota fails with a *QuotaError (errors.Is-able via
// ErrOverQuota) and changes nothing. ForceCharge bypasses the limit and
// is reserved for accounting moves that must not fail — journal replay,
// migration, and evacuation — where the bytes already exist and the
// books must follow them.
package tenant

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Class is a tenant's priority class. Ordering matters: a higher class
// degrades later under overload.
type Class int

const (
	// BestEffort tenants shed first: they get the plain watermark with
	// no queueing and no headroom.
	BestEffort Class = iota
	// Burstable tenants queue behind a bounded deadline-aware wait
	// before shedding.
	Burstable
	// Guaranteed tenants admit into reserved headroom above the shed
	// watermark and are never queued.
	Guaranteed
)

// String renders the class in config-file spelling.
func (c Class) String() string {
	switch c {
	case Guaranteed:
		return "guaranteed"
	case Burstable:
		return "burstable"
	case BestEffort:
		return "best-effort"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass parses the config-file spelling of a priority class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "guaranteed":
		return Guaranteed, nil
	case "burstable":
		return Burstable, nil
	case "best-effort":
		return BestEffort, nil
	}
	return 0, fmt.Errorf("tenant: unknown class %q (want guaranteed, burstable, or best-effort)", s)
}

// Default is the tenant charged when a request carries no
// X-Hetmem-Tenant header.
const Default = "default"

// ErrOverQuota is the errors.Is target for quota rejections.
var ErrOverQuota = errors.New("tenant: over quota")

// QuotaError reports a Charge that would exceed a tenant's per-kind
// quota. It carries the tenant, kind, and limit so the API error
// message can name all three.
type QuotaError struct {
	Tenant    string
	Kind      string
	Limit     uint64
	Used      uint64
	Requested uint64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q over %s quota: %d bytes requested with %d of limit %d in use",
		e.Tenant, e.Kind, e.Requested, e.Used, e.Limit)
}

// Unwrap makes errors.Is(err, ErrOverQuota) work.
func (e *QuotaError) Unwrap() error { return ErrOverQuota }

// Tenant is one named tenant: immutable identity (Name, Class, quotas)
// plus atomic usage accounting and QoS counters.
type Tenant struct {
	Name  string
	Class Class

	// quotas maps memory kind -> byte limit. A kind absent from the map
	// is unlimited; a kind present with limit 0 is forbidden. Immutable
	// after registration.
	quotas map[string]uint64

	mu    sync.RWMutex
	usage map[string]*atomic.Uint64 // bytes in use by kind

	// QoS counters, exported on /metrics with a tenant label.
	Sheds         atomic.Uint64 // admissions rejected by the watermark
	QueueWaits    atomic.Uint64 // burstable admissions that waited in the queue
	QueueTimeouts atomic.Uint64 // burstable waits that timed out
	QuotaRejects  atomic.Uint64 // charges rejected by a per-kind quota
	Evictions     atomic.Uint64 // leases reaped (TTL expiry) for this tenant
}

func newTenant(name string, class Class, quotas map[string]uint64) *Tenant {
	t := &Tenant{
		Name:   name,
		Class:  class,
		quotas: make(map[string]uint64, len(quotas)),
		usage:  make(map[string]*atomic.Uint64, len(quotas)),
	}
	for k, v := range quotas {
		t.quotas[k] = v
		t.usage[k] = new(atomic.Uint64)
	}
	return t
}

// counter returns the usage counter for a kind, creating it on first
// touch. The fast path is one RLock'd map read.
func (t *Tenant) counter(kind string) *atomic.Uint64 {
	t.mu.RLock()
	c := t.usage[kind]
	t.mu.RUnlock()
	if c != nil {
		return c
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c = t.usage[kind]; c == nil {
		c = new(atomic.Uint64)
		t.usage[kind] = c
	}
	return c
}

// Limited reports whether the tenant has any per-kind quota at all.
func (t *Tenant) Limited() bool { return len(t.quotas) > 0 }

// Quota returns the byte limit for a kind and whether one is set.
func (t *Tenant) Quota(kind string) (uint64, bool) {
	lim, ok := t.quotas[kind]
	return lim, ok
}

// Used returns the bytes currently charged against a kind.
func (t *Tenant) Used(kind string) uint64 { return t.counter(kind).Load() }

// UsedTotal returns the bytes charged across all kinds.
func (t *Tenant) UsedTotal() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var sum uint64
	for _, c := range t.usage {
		sum += c.Load()
	}
	return sum
}

// Remaining returns the unused quota for a kind and whether the kind is
// limited at all. Unlimited kinds report (0, false).
func (t *Tenant) Remaining(kind string) (uint64, bool) {
	lim, ok := t.quotas[kind]
	if !ok {
		return 0, false
	}
	used := t.counter(kind).Load()
	if used >= lim {
		return 0, true
	}
	return lim - used, true
}

// Charge atomically adds n bytes of kind to the tenant's usage,
// failing with a *QuotaError — and changing nothing — if the kind's
// quota would be exceeded. Exactly consuming the quota is allowed.
func (t *Tenant) Charge(kind string, n uint64) error {
	c := t.counter(kind)
	lim, limited := t.quotas[kind]
	for {
		cur := c.Load()
		if limited && cur+n > lim {
			t.QuotaRejects.Add(1)
			return &QuotaError{Tenant: t.Name, Kind: kind, Limit: lim, Used: cur, Requested: n}
		}
		if c.CompareAndSwap(cur, cur+n) {
			return nil
		}
	}
}

// ForceCharge adds n bytes of kind to the tenant's usage without a
// quota check. Used where the bytes already moved and the accounting
// must follow: journal replay, migration, and evacuation.
func (t *Tenant) ForceCharge(kind string, n uint64) { t.counter(kind).Add(n) }

// Refund subtracts n bytes of kind, flooring at zero so a stray
// double-refund cannot wrap the counter.
func (t *Tenant) Refund(kind string, n uint64) {
	c := t.counter(kind)
	for {
		cur := c.Load()
		d := n
		if d > cur {
			d = cur
		}
		if c.CompareAndSwap(cur, cur-d) {
			return
		}
	}
}

// BytesByKind snapshots the tenant's usage map.
func (t *Tenant) BytesByKind() map[string]uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]uint64, len(t.usage))
	for k, c := range t.usage {
		out[k] = c.Load()
	}
	return out
}

// Registry holds every known tenant. Unknown tenant names
// auto-register on first use with the default class and no quotas, so
// accounting and metrics cover clients that never appeared in the
// config file.
type Registry struct {
	mu           sync.RWMutex
	tenants      map[string]*Tenant
	defaultClass Class
}

// NewRegistry returns a registry whose default (and auto-registered)
// class is burstable, with the Default tenant pre-created.
func NewRegistry() *Registry {
	r := &Registry{tenants: make(map[string]*Tenant), defaultClass: Burstable}
	r.tenants[Default] = newTenant(Default, Burstable, nil)
	return r
}

// Define registers (or replaces) a tenant spec. Replacing resets the
// tenant's usage and counters, so define tenants before serving.
func (r *Registry) Define(name string, class Class, quotas map[string]uint64) *Tenant {
	t := newTenant(name, class, quotas)
	r.mu.Lock()
	r.tenants[name] = t
	r.mu.Unlock()
	return t
}

// Get returns the tenant for name, auto-registering an unknown name
// with the default class and no quotas. An empty name means Default.
func (r *Registry) Get(name string) *Tenant {
	if name == "" {
		name = Default
	}
	r.mu.RLock()
	t := r.tenants[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.tenants[name]; t == nil {
		t = newTenant(name, r.defaultClass, nil)
		r.tenants[name] = t
	}
	return t
}

// Names returns the registered tenant names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.tenants))
	for n := range r.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytes returns each tenant's bytes in use summed across kinds.
func (r *Registry) TotalBytes() map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.tenants))
	for n, t := range r.tenants {
		out[n] = t.UsedTotal()
	}
	return out
}

// Stats is one tenant's observable state, for harnesses and tests.
type Stats struct {
	Name          string            `json:"name"`
	Class         string            `json:"class"`
	Bytes         map[string]uint64 `json:"bytes_by_kind"`
	Sheds         uint64            `json:"sheds"`
	QueueWaits    uint64            `json:"queue_waits"`
	QueueTimeouts uint64            `json:"queue_timeouts"`
	QuotaRejects  uint64            `json:"quota_rejects"`
	Evictions     uint64            `json:"evictions"`
}

// Snapshot returns per-tenant stats sorted by name.
func (r *Registry) Snapshot() []Stats {
	r.mu.RLock()
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.mu.RUnlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Name < tenants[j].Name })
	out := make([]Stats, 0, len(tenants))
	for _, t := range tenants {
		out = append(out, Stats{
			Name:          t.Name,
			Class:         t.Class.String(),
			Bytes:         t.BytesByKind(),
			Sheds:         t.Sheds.Load(),
			QueueWaits:    t.QueueWaits.Load(),
			QueueTimeouts: t.QueueTimeouts.Load(),
			QuotaRejects:  t.QuotaRejects.Load(),
			Evictions:     t.Evictions.Load(),
		})
	}
	return out
}

// WriteMetrics emits the per-tenant Prometheus series, deterministic
// (sorted by tenant then kind). The tenant label always comes first so
// rollup consumers can prefix-match `{tenant="name"`.
func (r *Registry) WriteMetrics(w io.Writer) {
	for _, st := range r.Snapshot() {
		kinds := make([]string, 0, len(st.Bytes))
		for k := range st.Bytes {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(w, "hetmemd_tenant_bytes{tenant=%q,kind=%q} %d\n", st.Name, k, st.Bytes[k])
		}
		fmt.Fprintf(w, "hetmemd_tenant_sheds_total{tenant=%q} %d\n", st.Name, st.Sheds)
		fmt.Fprintf(w, "hetmemd_tenant_queue_waits_total{tenant=%q} %d\n", st.Name, st.QueueWaits)
		fmt.Fprintf(w, "hetmemd_tenant_queue_timeouts_total{tenant=%q} %d\n", st.Name, st.QueueTimeouts)
		fmt.Fprintf(w, "hetmemd_tenant_quota_rejects_total{tenant=%q} %d\n", st.Name, st.QuotaRejects)
		fmt.Fprintf(w, "hetmemd_tenant_evictions_total{tenant=%q} %d\n", st.Name, st.Evictions)
	}
}

// fileSpec is one tenant's entry in the -tenants config file.
type fileSpec struct {
	Class  string            `json:"class"`
	Quotas map[string]uint64 `json:"quotas,omitempty"`
}

// fileConfig is the -tenants config file:
//
//	{
//	  "default_class": "burstable",
//	  "tenants": {
//	    "gold":  {"class": "guaranteed"},
//	    "noise": {"class": "best-effort", "quotas": {"DRAM": 134217728}}
//	  }
//	}
type fileConfig struct {
	DefaultClass string              `json:"default_class,omitempty"`
	Tenants      map[string]fileSpec `json:"tenants"`
}

// Load reads a -tenants config file into the registry.
func (r *Registry) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	return r.LoadBytes(data)
}

// LoadBytes parses a -tenants config document (strict: unknown fields
// are rejected) and defines every tenant in it.
func (r *Registry) LoadBytes(data []byte) error {
	var cfg fileConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return fmt.Errorf("tenant: parsing config: %w", err)
	}
	if cfg.DefaultClass != "" {
		dc, err := ParseClass(cfg.DefaultClass)
		if err != nil {
			return fmt.Errorf("tenant: default_class: %w", err)
		}
		r.mu.Lock()
		r.defaultClass = dc
		r.mu.Unlock()
	}
	// Validate everything before defining anything, so a bad file
	// cannot half-apply.
	classes := make(map[string]Class, len(cfg.Tenants))
	for name, spec := range cfg.Tenants {
		if name == "" {
			return errors.New("tenant: config has a tenant with an empty name")
		}
		c, err := ParseClass(spec.Class)
		if err != nil {
			return fmt.Errorf("tenant: %q: %w", name, err)
		}
		classes[name] = c
	}
	for name, spec := range cfg.Tenants {
		r.Define(name, classes[name], spec.Quotas)
	}
	return nil
}
