package experiments

import (
	"fmt"

	"hetmem/internal/core"
	"hetmem/internal/gups"
)

func init() {
	register("gups", "extension: HPCC RandomAccess (GUPS) by placement — a pure-latency workload", func() (string, error) {
		t, err := GUPS()
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

// GUPSCell is one (machine, placement) measurement.
type GUPSCell struct {
	Machine string
	Kind    string
	GUPS    float64
}

// GUPSData measures RandomAccess over an 8 GiB (Xeon) / 3 GiB (KNL)
// table on each local memory kind.
func GUPSData() ([]GUPSCell, error) {
	var out []GUPSCell
	cfgs := []struct {
		machine string
		tableB  uint64
		updates uint64
		nodes   map[string]int
	}{
		{"xeon", 8 << 30, 500_000_000, map[string]int{"DRAM": 0, "NVDIMM": 2}},
		{"knl-snc4-flat", 3 << 30, 200_000_000, map[string]int{"DRAM": 0, "MCDRAM": 4}},
	}
	for _, cfg := range cfgs {
		sys, err := core.NewSystem(cfg.machine, core.Options{})
		if err != nil {
			return nil, err
		}
		ini := sys.InitiatorForGroup(0)
		for kind, nodeOS := range cfg.nodes {
			table, err := sys.Machine.Alloc("gups-table", cfg.tableB, sys.Machine.NodeByOS(nodeOS))
			if err != nil {
				return nil, err
			}
			e := sys.Engine(ini)
			res := gups.Run(e, table, cfg.updates, gups.SimParams{})
			sys.Free(table)
			out = append(out, GUPSCell{cfg.machine, kind, res.GUPS})
		}
	}
	return out, nil
}

// GUPS renders the extension table.
func GUPS() (*Table, error) {
	data, err := GUPSData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "gups",
		Title:  "HPCC RandomAccess (GUPS) by placement (extension workload)",
		Header: []string{"Machine", "Placement", "GUPS"},
		Notes: []string{
			"a second latency-bound application beyond Graph500: the NVDIMM penalty passes straight through,",
			"while on KNL the update stream saturates DDR4 bandwidth and the MCDRAM wins clearly",
		},
	}
	for _, c := range data {
		t.Rows = append(t.Rows, []string{c.Machine, c.Kind, fmt.Sprintf("%.4f", c.GUPS)})
	}
	// Keep the real kernel honest whenever the experiment runs.
	if err := gups.Real(16, 100_000); err != nil {
		return nil, err
	}
	return t, nil
}
