package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"capacity", "fig1", "fig2", "fig3", "fig5", "fig6", "fig7a", "fig7b",
		"gups", "nam", "numa", "portability", "scaling", "table1", "table2a", "table2b", "table3a", "table3b", "table4"}
	specs := All()
	if len(specs) != len(want) {
		t.Fatalf("experiments = %d, want %d", len(specs), len(want))
	}
	for i, s := range specs {
		if s.ID != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, s.ID, want[i])
		}
		if s.Title == "" {
			t.Errorf("%s has no title", s.ID)
		}
	}
	if _, err := Run("nope"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			out, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(out) < 50 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
		})
	}
}

// TestTable2aShape asserts the Table IIa structure the paper reports:
// DRAM beats NVDIMM by 1.5-3x at every size except the last, where the
// NVDIMM falls off a cliff; both decline slowly with size.
func TestTable2aShape(t *testing.T) {
	data, err := Table2aData()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 5 {
		t.Fatalf("rows = %d", len(data))
	}
	for i, c := range data {
		d, n := c.TEPSe8["DRAM"], c.TEPSe8["NVDIMM"]
		if d <= n {
			t.Fatalf("size %.1fGB: DRAM %.3f should beat NVDIMM %.3f", c.GraphGB, d, n)
		}
		ratio := d / n
		if i < 4 {
			if ratio < 1.4 || ratio > 3.0 {
				t.Errorf("size %.1fGB: ratio %.2f outside the paper's 1.5-3x regime", c.GraphGB, ratio)
			}
		} else {
			// The 34.36GB row: NVDIMM cliff (paper ratio 2.86; the
			// working set has outgrown the device's buffering).
			if ratio < 2.5 {
				t.Errorf("largest size: ratio %.2f should show the NVDIMM cliff", ratio)
			}
			if n >= data[i-1].TEPSe8["NVDIMM"]*0.75 {
				t.Errorf("NVDIMM should drop sharply at 34GB: %.3f vs %.3f", n, data[i-1].TEPSe8["NVDIMM"])
			}
		}
		// Magnitudes: paper DRAM 3.42..2.99 e+8.
		if d < 1.5 || d > 6 {
			t.Errorf("DRAM TEPS %.2fe8 far from the paper's ~3e8", d)
		}
	}
	// Mild monotone decline of DRAM with graph size.
	for i := 1; i < len(data); i++ {
		if data[i].TEPSe8["DRAM"] > data[i-1].TEPSe8["DRAM"]*1.02 {
			t.Errorf("DRAM TEPS should not grow with size: %.3f -> %.3f", data[i-1].TEPSe8["DRAM"], data[i].TEPSe8["DRAM"])
		}
	}
}

// TestTable2bShape asserts the KNL observation: HBM and DRAM deliver
// nearly identical TEPS (within 10%), at magnitudes far below the
// Xeon's.
func TestTable2bShape(t *testing.T) {
	data, err := Table2bData()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2 {
		t.Fatalf("rows = %d", len(data))
	}
	for _, c := range data {
		h, d := c.TEPSe8["HBM"], c.TEPSe8["DRAM"]
		ratio := h / d
		if ratio < 0.92 || ratio > 1.10 {
			t.Errorf("size %.1fGB: HBM/DRAM %.3f should be ~1 (paper 1.007, 1.015)", c.GraphGB, ratio)
		}
		if h < 0.1 || h > 1.5 {
			t.Errorf("KNL TEPS %.3fe8 far from the paper's ~0.4e8", h)
		}
	}
}

// TestTable3aShape asserts the Xeon STREAM structure: Latency->DRAM at
// ~75 GB/s; Capacity->NVDIMM at ~31.6 buffered dropping to ~10
// sustained and degrading further at 223 GiB.
func TestTable3aShape(t *testing.T) {
	data, err := Table3aData()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]StreamCell{}
	for _, c := range data {
		byKey[c.Criterion+"/"+f2(c.TotalGiB)] = c
	}
	cap22 := byKey["Capacity/22.40"]
	cap89 := byKey["Capacity/89.40"]
	cap223 := byKey["Capacity/223.50"]
	lat22 := byKey["Latency/22.40"]
	lat89 := byKey["Latency/89.40"]

	if cap22.BestTarget != "NVDIMM" || lat22.BestTarget != "DRAM" {
		t.Fatalf("targets: capacity->%s latency->%s", cap22.BestTarget, lat22.BestTarget)
	}
	within := func(got, want, tol float64, label string) {
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %.2f, want %.1f±%.1f", label, got, want, tol)
		}
	}
	within(lat22.TriadGBs, 75, 8, "Latency 22.4GiB")
	within(lat89.TriadGBs, 75, 8, "Latency 89.4GiB")
	within(cap22.TriadGBs, 31.6, 5, "Capacity 22.4GiB")
	within(cap89.TriadGBs, 10.5, 3, "Capacity 89.4GiB")
	if cap223.TriadGBs >= cap89.TriadGBs {
		t.Errorf("NVDIMM should degrade with footprint: %.2f vs %.2f", cap223.TriadGBs, cap89.TriadGBs)
	}
	// The 223.5GiB latency run cannot fit DRAM alone: it spills (the
	// paper leaves the cell blank).
	if c := byKey["Latency/223.50"]; !c.Spilled && !c.Failed {
		t.Errorf("Latency 223.5GiB should spill or fail, got %.2f", c.TriadGBs)
	}
}

// TestTable3bShape asserts the KNL STREAM structure, including the
// capacity crossover: Bandwidth->MCDRAM ~88 GB/s until the arrays
// outgrow the 4GB node, then DRAM speed; Latency->DRAM ~29 GB/s flat.
func TestTable3bShape(t *testing.T) {
	data, err := Table3bData()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]StreamCell{}
	for _, c := range data {
		byKey[c.Criterion+"/"+f2(c.TotalGiB)] = c
	}
	bw1 := byKey["Bandwidth/1.10"]
	bw17 := byKey["Bandwidth/17.90"]
	lat1 := byKey["Latency/1.10"]

	if bw1.BestTarget != "MCDRAM" || lat1.BestTarget != "DRAM" {
		t.Fatalf("targets: bandwidth->%s latency->%s", bw1.BestTarget, lat1.BestTarget)
	}
	if bw1.TriadGBs < 80 || bw1.TriadGBs > 95 {
		t.Errorf("MCDRAM triad %.2f, want ~88 (paper 85-90)", bw1.TriadGBs)
	}
	if lat1.TriadGBs < 25 || lat1.TriadGBs > 33 {
		t.Errorf("DRAM triad %.2f, want ~29 (paper 29.17)", lat1.TriadGBs)
	}
	// The crossover: at 17.9GiB the bandwidth-ranked run lands on DRAM.
	if !bw17.Spilled {
		t.Error("17.9GiB bandwidth run should have fallen back to DRAM")
	}
	if ratio := bw17.TriadGBs / lat1.TriadGBs; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("fallback run %.2f should match DRAM speed %.2f", bw17.TriadGBs, lat1.TriadGBs)
	}
}

// TestTable4Shape asserts the profiler flags land like the paper's:
// Graph500 latency-sensitive everywhere (stalling harder on NVDIMM),
// STREAM bandwidth-sensitive with the flag on the kind it ran on.
func TestTable4Shape(t *testing.T) {
	rows, err := Table4Data()
	if err != nil {
		t.Fatal(err)
	}
	g5d, g5n := rows["Graph500/DRAM"], rows["Graph500/NVDIMM"]
	std, stn := rows["STREAM/DRAM"], rows["STREAM/NVDIMM"]

	if !g5d.LatencySensitive || !g5n.LatencySensitive || g5d.BandwidthSensitive || g5n.BandwidthSensitive {
		t.Errorf("Graph500 flags wrong: %+v / %+v", g5d, g5n)
	}
	if g5n.DRAMBoundPct <= g5d.DRAMBoundPct {
		t.Errorf("Graph500 should stall more on NVDIMM: %.1f vs %.1f", g5n.DRAMBoundPct, g5d.DRAMBoundPct)
	}
	if g5d.PMemBoundPct != 0 || g5n.PMemBoundPct == 0 {
		t.Errorf("PMem bound wrong: %.1f / %.1f", g5d.PMemBoundPct, g5n.PMemBoundPct)
	}
	if !std.BandwidthSensitive || std.BandwidthKind != "DRAM" {
		t.Errorf("STREAM/DRAM flags wrong: %+v", std)
	}
	if !stn.BandwidthSensitive || stn.BandwidthKind != "NVDIMM" {
		t.Errorf("STREAM/NVDIMM flags wrong: %+v", stn)
	}
	// Paper: DRAM Bandwidth Bound 80.4% on the DRAM run.
	if std.DRAMBWBoundPct() < 50 {
		t.Errorf("STREAM/DRAM BW bound %.1f%% too low", std.DRAMBWBoundPct())
	}
}

// TestPortabilityShape asserts the Section VI-A matrix.
func TestPortabilityShape(t *testing.T) {
	rows, err := PortabilityData()
	if err != nil {
		t.Fatal(err)
	}
	get := func(machine, req string) string {
		for _, r := range rows {
			if r.Machine == machine && strings.Contains(r.Request, req) {
				return r.Outcome
			}
		}
		t.Fatalf("missing row %s/%s", machine, req)
		return ""
	}
	if get("xeon", "Bandwidth") != "DRAM" || get("knl-snc4-flat", "Bandwidth") != "MCDRAM" {
		t.Error("bandwidth request did not adapt per machine")
	}
	if get("xeon", "Latency") != "DRAM" || get("knl-snc4-flat", "Latency") != "DRAM" {
		t.Error("latency request should pick DRAM on both machines")
	}
	if get("xeon", "Capacity") != "NVDIMM" || get("knl-snc4-flat", "Capacity") != "DRAM" {
		t.Error("capacity request did not adapt per machine")
	}
	if !strings.HasPrefix(get("xeon", "MEMKIND_HBW"), "ERROR") {
		t.Error("memkind HBW should fail on the Xeon")
	}
	if get("knl-snc4-flat", "MEMKIND_HBW") != "MCDRAM" {
		t.Error("memkind HBW should work on KNL")
	}
	// The future platform (Section II-C): Bandwidth finds the HBM,
	// Latency spares it.
	if get("rhea", "Bandwidth") != "HBM" || get("rhea", "Latency") != "DDR5" || get("rhea", "Capacity") != "DDR5" {
		t.Errorf("rhea rows wrong: %s/%s/%s", get("rhea", "Bandwidth"), get("rhea", "Latency"), get("rhea", "Capacity"))
	}
	if get("rhea", "MEMKIND_HBW") != "HBM" {
		t.Error("memkind HBW should work on rhea")
	}
}

func TestFig5Verbatim(t *testing.T) {
	out, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"131072", "78644", "= 26 from", "= 77 from", "Capacity"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 missing %q", want)
		}
	}
}

func TestCapacityNarrative(t *testing.T) {
	out, err := Capacity()
	if err != nil {
		t.Fatal(err)
	}
	// FCFS loses the MCDRAM for the critical buffer; priority wins it.
	fcfs := out[strings.Index(out, "FCFS"):strings.Index(out, "priority allocation")]
	if !strings.Contains(fcfs, "scratch   (prio  1) -> MCDRAM") || !strings.Contains(fcfs, "critical  (prio 10) -> DRAM") {
		t.Errorf("FCFS section wrong:\n%s", fcfs)
	}
	prio := out[strings.Index(out, "priority allocation"):]
	if !strings.Contains(prio, "critical  (prio 10) -> MCDRAM") {
		t.Errorf("priority section wrong:\n%s", prio)
	}
	if !strings.Contains(out, "partial=true") {
		t.Error("hybrid allocation did not split")
	}
	if !strings.Contains(out, "allowed by Linux: false") {
		t.Error("Linux restriction not demonstrated")
	}
}

func TestTable1Contents(t *testing.T) {
	tab := Table1()
	out := tab.Render()
	for _, want := range []string{"Capacity, Locality", "always supported", "benchmarks", "user-specified"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

// TestGUPSShape asserts the extension workload's structure: the
// latency penalty passes through on the Xeon; the KNL kinds stay
// within a factor of two either way.
func TestGUPSShape(t *testing.T) {
	data, err := GUPSData()
	if err != nil {
		t.Fatal(err)
	}
	get := func(machine, kind string) float64 {
		for _, c := range data {
			if c.Machine == machine && c.Kind == kind {
				return c.GUPS
			}
		}
		t.Fatalf("missing %s/%s", machine, kind)
		return 0
	}
	if r := get("xeon", "DRAM") / get("xeon", "NVDIMM"); r < 1.5 {
		t.Errorf("xeon GUPS ratio %.2f too small for a latency workload", r)
	}
	if r := get("knl-snc4-flat", "MCDRAM") / get("knl-snc4-flat", "DRAM"); r < 1.2 || r > 5 {
		t.Errorf("knl GUPS ratio %.2f implausible", r)
	}
}

// TestScalingShape asserts the distributed extension's structure.
func TestScalingShape(t *testing.T) {
	rows, err := ScalingData()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Ranks != 1 || rows[2].Ranks != 4 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].CommMBPerBFS != 0 {
		t.Error("single rank should not communicate")
	}
	if !(rows[2].TEPSe8 > rows[1].TEPSe8 && rows[1].TEPSe8 > rows[0].TEPSe8) {
		t.Errorf("TEPS not scaling: %+v", rows)
	}
	if rows[2].Speedup < 2 || rows[2].Speedup > 5.5 {
		t.Errorf("4-rank speedup %.2f implausible", rows[2].Speedup)
	}
}

func TestNUMADegenerateCase(t *testing.T) {
	out, err := NUMA()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package 0: best latency target = NUMANode P#0",
		"package 1: best latency target = NUMANode P#1",
		"10", "15",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("numa experiment missing %q:\n%s", want, out)
		}
	}
}
