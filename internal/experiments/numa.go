package experiments

import (
	"fmt"

	"hetmem/internal/core"
	"hetmem/internal/memattr"
)

func init() {
	register("numa", "degenerate case: the attribute API on a homogeneous NUMA machine", NUMA)
}

// NUMA demonstrates the paper's Section IV remark that the API "could
// actually also be used for homogeneous NUMA platforms since latency
// or bandwidth indicate whether NUMA nodes are close or far away": on
// a plain dual-socket DRAM machine the attribute machinery reduces to
// classical NUMA-aware placement, and the distance-matrix adapter
// recovers the numactl view.
func NUMA() (string, error) {
	sys, err := core.NewSystem("homogeneous", core.Options{})
	if err != nil {
		return "", err
	}
	out := "Homogeneous dual-socket machine: attributes degenerate to NUMA distances\n\n"

	for pkg := 0; pkg < 2; pkg++ {
		ini := sys.InitiatorForPackage(pkg)
		best, v, err := sys.Registry.BestTarget(memattr.Latency, ini)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("threads on package %d: best latency target = NUMANode P#%d (%d ns) - the local node\n",
			pkg, best.OSIndex, v)
	}

	d, err := sys.Registry.DistanceMatrix(memattr.Latency)
	if err != nil {
		return "", err
	}
	out += "\n" + d.Render(true)
	out += "\nthe normalized matrix is numactl --hardware's classic 10/15 pattern;\n" +
		"the same API that picked MCDRAM on KNL does plain NUMA placement here.\n"
	return out, nil
}
