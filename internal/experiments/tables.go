package experiments

import (
	"fmt"

	"hetmem/internal/alloc"
	"hetmem/internal/bitmap"
	"hetmem/internal/core"
	"hetmem/internal/graph500"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/policy"
	"hetmem/internal/profile"
	"hetmem/internal/stream"
)

func init() {
	register("table2a", "Graph500 TEPS on the Xeon: DRAM vs NVDIMM across graph sizes", func() (string, error) {
		t, err := Table2a()
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	register("table2b", "Graph500 TEPS on the KNL cluster: HBM vs DRAM", func() (string, error) {
		t, err := Table2b()
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	register("table3a", "STREAM Triad on the Xeon by optimized criteria", func() (string, error) {
		t, err := Table3a()
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	register("table3b", "STREAM Triad on the KNL cluster by optimized criteria", func() (string, error) {
		t, err := Table3b()
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	register("table4", "VTune-style execution summaries for Graph500 and STREAM", func() (string, error) {
		return Table4()
	})
	register("fig7a", "per-object memory-access analysis of Graph500 (DRAM vs NVDIMM)", Fig7a)
	register("fig7b", "per-object memory-access analysis of STREAM Triad", Fig7b)
}

// xeonProcs and knlProcs are the paper's process counts: 16 MPI ranks
// on one Xeon package / one KNL cluster.
const (
	xeonProcs     = 16
	knlProcs      = 16
	knlCPUPerEdge = 1.8e-7 // slow KNL cores, calibrated against Table IIb magnitudes
	knlMLP        = 3      // in-order cores sustain few outstanding misses
	nRoots        = 4
)

// Graph500Cell is one (graph size, placement) measurement.
type Graph500Cell struct {
	Scale   int
	GraphGB float64
	// TEPSe8 maps the placement label (DRAM / NVDIMM / HBM) to TEPS
	// in units of 1e8, as Table II reports.
	TEPSe8 map[string]float64
}

// runGraph500On replays the analytic BFS profile with all buffers
// placed through the given placement function.
func runGraph500On(sys *core.System, ini *bitmap.Bitmap, threads, scale int,
	params graph500.SimParams,
	place func(name string, size uint64) (*memsim.Buffer, error)) (float64, error) {

	s := graph500.Sizes(scale, 16)
	bufs, err := graph500.AllocBuffers(place, s)
	if err != nil {
		return 0, err
	}
	defer bufs.Free(sys.Machine)
	e := sys.Engine(ini)
	e.SetThreads(threads)
	an := graph500.AnalyticStats(scale, 16)
	stats := make([]graph500.BFSStats, nRoots)
	for i := range stats {
		stats[i] = an
	}
	return graph500.RunTEPS(e, bufs, stats, params).HarmonicTEPS, nil
}

// Table2aData measures Graph500 on the Xeon with the whole process on
// DRAM and on NVDIMM, for edge lists of 2.15 to 34.36 GB (scales
// 23-27) — the process-level benchmarking method of Section VI-A.
func Table2aData() ([]Graph500Cell, error) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		return nil, err
	}
	ini := sys.InitiatorForPackage(0)
	var out []Graph500Cell
	for scale := 23; scale <= 27; scale++ {
		s := graph500.Sizes(scale, 16)
		cell := Graph500Cell{Scale: scale, GraphGB: float64(s.GraphLabelB) / 1e9, TEPSe8: map[string]float64{}}
		for label, nodeOS := range map[string]int{"DRAM": 0, "NVDIMM": 2} {
			// numactl --membind style whole-process binding, the paper's
			// Section VI-A benchmarking method.
			place := policy.Policy{Mode: policy.Bind, Nodes: []int{nodeOS}}.Placer(sys.Machine, ini)
			teps, err := runGraph500On(sys, ini, xeonProcs, scale, graph500.SimParams{}, place)
			if err != nil {
				return nil, fmt.Errorf("table2a scale %d on %s: %w", scale, label, err)
			}
			cell.TEPSe8[label] = teps / 1e8
		}
		out = append(out, cell)
	}
	return out, nil
}

// Table2a renders Table IIa.
func Table2a() (*Table, error) {
	data, err := Table2aData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table2a",
		Title:  "Graph500 TEPS(e+8), Xeon, 16 procs on one package (paper Table IIa)",
		Header: []string{"Graph Size", "DRAM", "NVDIMM", "DRAM/NVDIMM"},
		Notes: []string{
			"paper: DRAM 3.42..2.99, NVDIMM 2.06..1.04; DRAM 1.5-3x better, NVDIMM cliff at 34.36GB",
		},
	}
	for _, c := range data {
		d, n := c.TEPSe8["DRAM"], c.TEPSe8["NVDIMM"]
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f GB", c.GraphGB), f3(d), f3(n), f2(d / n)})
	}
	return t, nil
}

// Table2bData measures Graph500 on one KNL cluster, on MCDRAM (with
// ranked fallback for what does not fit, as the paper's allocator
// does) and on DRAM, for scales 23-24.
func Table2bData() ([]Graph500Cell, error) {
	sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		return nil, err
	}
	ini := sys.InitiatorForGroup(0)
	params := graph500.SimParams{CPUPerEdge: knlCPUPerEdge, MLP: knlMLP}
	var out []Graph500Cell
	for scale := 23; scale <= 24; scale++ {
		s := graph500.Sizes(scale, 16)
		cell := Graph500Cell{Scale: scale, GraphGB: float64(s.GraphLabelB) / 1e9, TEPSe8: map[string]float64{}}

		// HBM run: bandwidth-ranked placement with partial spill (the
		// 4.29GB graph does not fit the 4GB MCDRAM).
		teps, err := runGraph500On(sys, ini, knlProcs, scale, params,
			func(name string, size uint64) (*memsim.Buffer, error) {
				b, _, err := sys.MemAlloc(name, size, memattr.Bandwidth, ini, alloc.WithPartial())
				return b, err
			})
		if err != nil {
			return nil, fmt.Errorf("table2b scale %d on HBM: %w", scale, err)
		}
		cell.TEPSe8["HBM"] = teps / 1e8

		// DRAM run.
		node := sys.Machine.NodeByOS(0)
		teps, err = runGraph500On(sys, ini, knlProcs, scale, params,
			func(name string, size uint64) (*memsim.Buffer, error) {
				return sys.Machine.Alloc(name, size, node)
			})
		if err != nil {
			return nil, fmt.Errorf("table2b scale %d on DRAM: %w", scale, err)
		}
		cell.TEPSe8["DRAM"] = teps / 1e8
		out = append(out, cell)
	}
	return out, nil
}

// Table2b renders Table IIb.
func Table2b() (*Table, error) {
	data, err := Table2bData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table2b",
		Title:  "Graph500 TEPS(e+8), KNL, 16 procs on one cluster (paper Table IIb)",
		Header: []string{"Graph Size", "HBM", "DRAM", "HBM/DRAM"},
		Notes: []string{
			"paper: 0.418 vs 0.415 and 0.402 vs 0.396 - the choice barely matters (latencies are similar)",
		},
	}
	for _, c := range data {
		h, d := c.TEPSe8["HBM"], c.TEPSe8["DRAM"]
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f GB", c.GraphGB), f3(h), f3(d), f2(h / d)})
	}
	return t, nil
}

// StreamCell is one (criterion, size) measurement of Table III.
type StreamCell struct {
	Criterion  string
	BestTarget string
	TotalGiB   float64
	TriadGBs   float64
	// Failed marks the paper's blank cells: the criterion's targets
	// cannot hold the arrays.
	Failed bool
	// Spilled marks runs where at least one array fell back past the
	// best-ranked target (e.g. the KNL 17.9GiB bandwidth run, whose
	// arrays exceed the MCDRAM and land on DRAM).
	Spilled bool
}

// streamByCriterion allocates the three arrays via the heterogeneous
// allocator optimizing the given attribute, runs STREAM, and reports
// the triad figure. Array-level ranked fallback happens naturally (the
// KNL 17.9GiB bandwidth case lands on DRAM because each array exceeds
// the MCDRAM).
func streamByCriterion(sys *core.System, ini *bitmap.Bitmap, attr memattr.ID, totalGiB float64) (StreamCell, error) {
	cell := StreamCell{Criterion: sys.Registry.Name(attr), TotalGiB: totalGiB}
	elems := uint64(totalGiB * float64(1<<30) / 3 / stream.ElemBytes)
	var firstDec *alloc.Decision
	spilled := false
	ar, err := stream.AllocArrays(func(name string, size uint64) (*memsim.Buffer, error) {
		b, dec, err := sys.MemAlloc(name, size, attr, ini)
		if err == nil {
			if firstDec == nil {
				firstDec = &dec
			}
			if dec.RankPosition > 0 {
				spilled = true
			}
		}
		return b, err
	}, elems)
	if err != nil {
		cell.Failed = true
		return cell, nil
	}
	defer ar.Free(sys.Machine)
	if firstDec != nil {
		cell.BestTarget = firstDec.Target.Subtype
	}
	cell.Spilled = spilled
	e := sys.Engine(ini)
	res := stream.Run(e, ar, 3)
	cell.TriadGBs = res.TriadBW
	return cell, nil
}

// Table3aData reproduces Table IIIa: Xeon, 20 threads, criteria
// Capacity (NVDIMM) and Latency (DRAM), totals 22.4/89.4/223.5 GiB.
func Table3aData() ([]StreamCell, error) {
	var out []StreamCell
	for _, attr := range []memattr.ID{memattr.Capacity, memattr.Latency} {
		for _, total := range []float64{22.4, 89.4, 223.5} {
			sys, err := core.NewSystem("xeon", core.Options{})
			if err != nil {
				return nil, err
			}
			cell, err := streamByCriterion(sys, sys.InitiatorForPackage(0), attr, total)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// Table3bData reproduces Table IIIb: KNL cluster, 16 threads, criteria
// Bandwidth (MCDRAM, falling back to DRAM when full) and Latency
// (DRAM), totals 1.1/3.4/17.9 GiB.
func Table3bData() ([]StreamCell, error) {
	var out []StreamCell
	for _, attr := range []memattr.ID{memattr.Bandwidth, memattr.Latency} {
		for _, total := range []float64{1.1, 3.4, 17.9} {
			sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
			if err != nil {
				return nil, err
			}
			cell, err := streamByCriterion(sys, sys.InitiatorForGroup(0), attr, total)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

func renderStreamTable(id, title string, data []StreamCell, sizes []float64, notes []string) *Table {
	t := &Table{ID: id, Title: title, Notes: notes}
	t.Header = []string{"Optimized Criteria", "Best Target"}
	for _, s := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("%.1fGiB", s))
	}
	byCrit := map[string][]StreamCell{}
	var order []string
	for _, c := range data {
		if _, seen := byCrit[c.Criterion]; !seen {
			order = append(order, c.Criterion)
		}
		byCrit[c.Criterion] = append(byCrit[c.Criterion], c)
	}
	for _, crit := range order {
		cells := byCrit[crit]
		target := ""
		row := []string{crit}
		var vals []string
		for _, c := range cells {
			if c.Failed {
				vals = append(vals, "-")
				continue
			}
			v := f2(c.TriadGBs)
			if c.Spilled {
				v += "*"
			}
			vals = append(vals, v)
			if target == "" {
				target = c.BestTarget
			}
		}
		row = append(row, target)
		row = append(row, vals...)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table3a renders Table IIIa.
func Table3a() (*Table, error) {
	data, err := Table3aData()
	if err != nil {
		return nil, err
	}
	return renderStreamTable("table3a",
		"STREAM Triad GB/s, Xeon, 20 threads on one package (paper Table IIIa)",
		data, []float64{22.4, 89.4, 223.5},
		[]string{"cells marked * spilled past the best-ranked target (ranked fallback)",
			"paper: Capacity->NVDIMM 31.59/10.49/9.46; Latency->DRAM 75.06/75.24/- (arrays exceed the DRAM capacity;",
			"our allocator instead spills the third array to NVDIMM and reports the mixed-placement figure)"}), nil
}

// Table3b renders Table IIIb.
func Table3b() (*Table, error) {
	data, err := Table3bData()
	if err != nil {
		return nil, err
	}
	return renderStreamTable("table3b",
		"STREAM Triad GB/s, KNL, 16 threads on one cluster (paper Table IIIb)",
		data, []float64{1.1, 3.4, 17.9},
		[]string{"cells marked * spilled past the best-ranked target (ranked fallback)",
			"paper: Bandwidth->HBM 85.05/89.90/29.16 (HBM full at 17.9GiB, fallback to DRAM); Latency->DRAM 29.17/29.17/-",
			"deviation: we report a measured value for Latency at 17.9GiB (it fits the 24GB DRAM); the paper leaves it blank"}), nil
}

// Table4Data profiles Graph500 and STREAM on DRAM and NVDIMM on the
// Xeon, returning the VTune-style summaries keyed like the paper's
// rows.
func Table4Data() (map[string]profile.Summary, error) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		return nil, err
	}
	ini := sys.InitiatorForPackage(0)
	out := map[string]profile.Summary{}

	for label, nodeOS := range map[string]int{"DRAM": 0, "NVDIMM": 2} {
		node := sys.Machine.NodeByOS(nodeOS)
		place := func(name string, size uint64) (*memsim.Buffer, error) {
			return sys.Machine.Alloc(name, size, node)
		}
		// Graph500.
		s := graph500.Sizes(23, 16)
		bufs, err := graph500.AllocBuffers(place, s)
		if err != nil {
			return nil, err
		}
		e := sys.Engine(ini)
		e.SetThreads(xeonProcs)
		an := graph500.AnalyticStats(23, 16)
		graph500.RunTEPS(e, bufs, []graph500.BFSStats{an, an}, graph500.SimParams{})
		out["Graph500/"+label] = profile.Summarize(e.Stats())
		bufs.Free(sys.Machine)

		// STREAM Triad.
		ar, err := stream.AllocArrays(place, 22*(uint64(1)<<30)/3/stream.ElemBytes)
		if err != nil {
			return nil, err
		}
		e = sys.Engine(ini)
		stream.Run(e, ar, 3)
		out["STREAM/"+label] = profile.Summarize(e.Stats())
		ar.Free(sys.Machine)
	}
	return out, nil
}

// Table4 renders the Table IV analogue.
func Table4() (string, error) {
	rows, err := Table4Data()
	if err != nil {
		return "", err
	}
	head := "VTune-style execution summary (paper Table IV)\n" +
		"paper: Graph500 latency-sensitive (DRAM Bound 29%/63%, BW Bound 0%);\n" +
		"       STREAM bandwidth-sensitive (DRAM BW Bound 80.4% on DRAM, PMem flagged on NVDIMM)\n\n"
	return head + profile.RenderSummary(rows), nil
}

// Fig7a renders the per-object analysis of Graph500 on both
// placements, like Figure 7a.
func Fig7a() (string, error) {
	return fig7(func(place func(string, uint64) (*memsim.Buffer, error), sys *core.System, ini *bitmap.Bitmap) error {
		s := graph500.Sizes(23, 16)
		bufs, err := graph500.AllocBuffers(place, s)
		if err != nil {
			return err
		}
		e := sys.Engine(ini)
		e.SetThreads(xeonProcs)
		an := graph500.AnalyticStats(23, 16)
		graph500.RunTEPS(e, bufs, []graph500.BFSStats{an}, graph500.SimParams{})
		return nil
	}, "Graph500")
}

// Fig7b renders the per-object analysis of STREAM, like Figure 7b.
func Fig7b() (string, error) {
	return fig7(func(place func(string, uint64) (*memsim.Buffer, error), sys *core.System, ini *bitmap.Bitmap) error {
		ar, err := stream.AllocArrays(place, 22*(uint64(1)<<30)/3/stream.ElemBytes)
		if err != nil {
			return err
		}
		e := sys.Engine(ini)
		stream.Run(e, ar, 3)
		return nil
	}, "STREAM Triad")
}

func fig7(run func(func(string, uint64) (*memsim.Buffer, error), *core.System, *bitmap.Bitmap) error, app string) (string, error) {
	out := fmt.Sprintf("Memory Access analysis: hot objects of %s (paper Figure 7)\n", app)
	for _, placement := range []struct {
		label  string
		nodeOS int
	}{{"DRAM", 0}, {"NVDIMM", 2}} {
		sys, err := core.NewSystem("xeon", core.Options{})
		if err != nil {
			return "", err
		}
		ini := sys.InitiatorForPackage(0)
		node := sys.Machine.NodeByOS(placement.nodeOS)
		err = run(func(name string, size uint64) (*memsim.Buffer, error) {
			return sys.Machine.Alloc(name, size, node)
		}, sys, ini)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("\n--- allocated on %s ---\n", placement.label)
		out += profile.RenderObjects(profile.HotObjects(sys.Machine))
	}
	return out, nil
}
