// Package experiments regenerates every table and figure of the
// paper's evaluation on the simulated platforms. Each experiment has a
// data function returning structured results (used by the tests and
// the benchmark harness to assert the paper's qualitative shape) and a
// renderer producing the table the way the paper prints it. The
// cmd/repro binary exposes all of them on the command line.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// Spec describes one runnable experiment.
type Spec struct {
	ID    string
	Title string
	Run   func() (string, error)
}

var registry []Spec

func register(id, title string, run func() (string, error)) {
	registry = append(registry, Spec{id, title, run})
}

// All returns the experiment specs sorted by ID.
func All() []Spec {
	out := append([]Spec(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run executes the experiment with the given ID.
func Run(id string) (string, error) {
	for _, s := range registry {
		if s.ID == id {
			return s.Run()
		}
	}
	known := make([]string, 0, len(registry))
	for _, s := range All() {
		known = append(known, s.ID)
	}
	return "", fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(known, ", "))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
