package experiments

import (
	"fmt"
	"strings"

	"hetmem/internal/alloc"
	"hetmem/internal/core"
	"hetmem/internal/graph500"
	"hetmem/internal/interpose"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/profile"
	"hetmem/internal/sensitivity"
	"hetmem/internal/trace"
)

func init() {
	register("fig6", "the full sensitivity framework: benchmarking, profiling and static analysis feeding the allocator", Fig6)
	register("nam", "extension: four memory kinds at once, network-attached memory as the capacity backstop", NAM)
}

// Fig6 walks the paper's Figure 6 pipeline end to end on the Xeon:
// three independent methods determine Graph500's buffer sensitivity,
// their answers agree, and the hints flow into the allocator through
// the interposition layer — no application change.
func Fig6() (string, error) {
	var sb strings.Builder
	sb.WriteString("Sensitivity framework (paper Figure 6): three methods, one answer\n\n")

	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		return "", err
	}
	ini := sys.InitiatorForPackage(0)
	s := graph500.Sizes(23, 16)
	an := graph500.AnalyticStats(23, 16)

	// Method 1: process-level benchmarking (Section V-A).
	var nodes []*memsim.Node
	for _, obj := range sys.Topology().LocalNUMANodes(ini) {
		nodes = append(nodes, sys.Machine.Node(obj))
	}
	metrics, err := sensitivity.BenchmarkProcess(nodes, func(n *memsim.Node) (float64, error) {
		bufs, err := graph500.AllocBuffers(func(name string, size uint64) (*memsim.Buffer, error) {
			return sys.Machine.Alloc(name, size, n)
		}, s)
		if err != nil {
			return 0, err
		}
		defer bufs.Free(sys.Machine)
		e := sys.Engine(ini)
		e.SetThreads(16)
		return graph500.RunTEPS(e, bufs, []graph500.BFSStats{an}, graph500.SimParams{}).HarmonicTEPS, nil
	})
	if err != nil {
		return "", err
	}
	benchCands, err := sensitivity.ClassifyFromBench(metrics, sys.Registry, ini)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "1. benchmarking:    candidates %v\n", attrNames(sys, benchCands))

	// Method 2: profiling (Section V-B), whole-app flag plus
	// per-buffer recommendations.
	bufs, err := graph500.AllocBuffers(func(name string, size uint64) (*memsim.Buffer, error) {
		return sys.Machine.Alloc(name, size, sys.Machine.NodeByOS(0))
	}, s)
	if err != nil {
		return "", err
	}
	e := sys.Engine(ini)
	e.SetThreads(16)
	graph500.RunTEPS(e, bufs, []graph500.BFSStats{an}, graph500.SimParams{})
	sum := profile.Summarize(e.Stats())
	appAttr := sensitivity.FromProfile(sum)
	recs := sensitivity.FromHotObjects(profile.HotObjects(sys.Machine), 0.02)
	bufs.Free(sys.Machine)
	fmt.Fprintf(&sb, "2. profiling:       application -> %s; per buffer:\n", sys.Registry.Name(appAttr))
	for _, r := range recs {
		fmt.Fprintf(&sb, "     %-12s -> %-10s (%s)\n", r.Name, sys.Registry.Name(r.Attr), r.Rationale)
	}

	// Method 3: static analysis (Section V-C).
	static := sensitivity.AnalyzeStatic([]sensitivity.KernelSpec{{
		Name: "bfs",
		Uses: []sensitivity.BufferUse{
			{Buffer: "csr_xadj", Pattern: sensitivity.Random, AccessesPerElement: 1},
			{Buffer: "csr_adj", Pattern: sensitivity.Sequential, AccessesPerElement: 2},
			{Buffer: "bfs_parent", Pattern: sensitivity.Random, AccessesPerElement: 16},
			{Buffer: "bfs_queue", Pattern: sensitivity.Sequential, AccessesPerElement: 2},
		},
	}})
	fmt.Fprintf(&sb, "3. static analysis: bfs_parent -> %s, csr_adj -> %s\n\n",
		sys.Registry.Name(static["bfs_parent"]), sys.Registry.Name(static["csr_adj"]))

	// The methods agree on the hot buffer; feed the hints to the
	// interposition layer and allocate without touching the app.
	ip := interpose.New(sys.Allocator, ini, memattr.Capacity)
	rules := "bfs_parent Latency\ncsr_adj Bandwidth\n"
	parsed, err := interpose.ParseRules(strings.NewReader(rules), sys.Registry)
	if err != nil {
		return "", err
	}
	for _, r := range parsed {
		if err := ip.AddRule(r); err != nil {
			return "", err
		}
	}
	for _, site := range []struct {
		name string
		size uint64
	}{{"csr_xadj", s.XAdjB}, {"csr_adj", s.AdjB}, {"bfs_parent", s.ParentB}, {"bfs_queue", s.QueueB}} {
		if _, err := ip.Malloc(site.name, site.size); err != nil {
			return "", err
		}
	}
	sb.WriteString("hints applied through allocation interposition (no code change):\n")
	sb.WriteString(ip.RenderReport())

	// Post-mortem check: an exhaustive trace-replay search over the
	// hot buffers confirms the hint-driven placement is optimal.
	m2, err := sys.Platform.NewMachine()
	if err != nil {
		return "", err
	}
	rec := trace.NewRecorder(memsim.NewEngine(m2, ini))
	tb, err := graph500.AllocBuffers(func(name string, size uint64) (*memsim.Buffer, error) {
		return m2.Alloc(name, size, m2.NodeByOS(0))
	}, s)
	if err != nil {
		return "", err
	}
	rec.Phase("bfs", []memsim.Access{
		{Buffer: tb.Adj, ReadBytes: uint64(an.EdgesScanned) * 8},
		{Buffer: tb.Parent, RandomReads: uint64(an.EdgesScanned), MLP: 12},
	})
	res, err := trace.Exhaustive(rec.Trace(), func() (*memsim.Machine, error) {
		return sys.Platform.NewMachine()
	}, ini, []int{0, 2}, 64)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "\npost-mortem search over %d placements agrees: %s (%.3f s)\n",
		res.Evaluated, res.Best, res.Seconds)
	return sb.String(), nil
}

// NAM exercises the Figure 3 fictitious machine: four kinds of local
// memory ranked per attribute, and the network-attached memory acting
// as the capacity backstop once the NVDIMM fills — the disaggregated
// scenario of Section II-C.
func NAM() (string, error) {
	var sb strings.Builder
	sys, err := core.NewSystem("fictitious", core.Options{})
	if err != nil {
		return "", err
	}
	ini := sys.InitiatorForGroup(0)

	sb.WriteString("Four memory kinds, one initiator (fictitious platform, paper Figure 3)\n\n")
	for _, attr := range []memattr.ID{memattr.Bandwidth, memattr.Latency, memattr.Capacity} {
		ranked, _, _, err := sys.Allocator.Candidates(attr, ini, false)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "ranking by %-10s:", sys.Registry.Name(attr))
		for _, tv := range ranked {
			fmt.Fprintf(&sb, "  %s(%d)", tv.Target.Subtype, tv.Value)
		}
		sb.WriteString("\n")
	}

	// Fill the ranking chain for capacity: NVDIMM first, then the NAM
	// absorbs what local persistent memory cannot.
	sb.WriteString("\ncapacity-ranked allocations as nodes fill up:\n")
	sizes := []uint64{400 << 30, 200 << 30, 600 << 30}
	for i, size := range sizes {
		buf, dec, err := sys.MemAlloc(fmt.Sprintf("blob%d", i), size, memattr.Capacity, ini, alloc.WithPartial())
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "  %4dGB -> %-22s (rank %d, partial=%v)\n", size>>30, buf.NodeNames(), dec.RankPosition, dec.Partial)
	}
	sb.WriteString("\nthe NAM is never chosen for bandwidth or latency, but keeps capacity\nrequests succeeding after local memory fills - no code change needed.\n")
	return sb.String(), nil
}

func attrNames(sys *core.System, ids []memattr.ID) []string {
	var out []string
	for _, id := range ids {
		out = append(out, sys.Registry.Name(id))
	}
	return out
}
