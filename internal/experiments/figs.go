package experiments

import (
	"fmt"

	"hetmem/internal/core"
	"hetmem/internal/lstopo"
	"hetmem/internal/memattr"
	"hetmem/internal/platform"
	"hetmem/internal/topology"
)

func init() {
	register("fig1", "lstopo view of the KNL SNC4/Hybrid50 machine", func() (string, error) {
		return renderPlatform("knl-snc4-hybrid50")
	})
	register("fig2", "lstopo view of the dual Xeon 6230 with SNC2 and NVDIMMs", func() (string, error) {
		return renderPlatform("xeon-snc2")
	})
	register("fig3", "lstopo view of the fictitious all-kinds platform", func() (string, error) {
		return renderPlatform("fictitious")
	})
	register("fig5", "lstopo --memattrs on the Figure 2 Xeon (firmware values, local only)", Fig5)
	register("table1", "status of memory attributes and their discovery sources", func() (string, error) {
		return Table1().Render(), nil
	})
}

func renderPlatform(name string) (string, error) {
	p, err := platform.Get(name)
	if err != nil {
		return "", err
	}
	return p.Description + "\n\n" + lstopo.Render(p.Topo), nil
}

// Fig5 reproduces the lstopo --memattrs report: native HMAT discovery
// on the SNC2 Xeon, exposing the verbatim paper values and the
// local-only limitation.
func Fig5() (string, error) {
	sys, err := core.NewSystem("xeon-snc2", core.Options{})
	if err != nil {
		return "", err
	}
	head := fmt.Sprintf("$ lstopo --memattrs   (platform %s, source %s)\n", sys.Platform.Name, sys.Source)
	return head + lstopo.RenderMemAttrs(sys.Registry), nil
}

// Table1 reproduces the attribute-status table: which attributes are
// discovered natively (and on which of our platforms) versus fed by
// external sources.
func Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Status of memory attributes (paper Table I)",
		Header: []string{"Attributes", "Native Discovery", "External Sources"},
	}
	hmatPlatforms, benchPlatforms := []string{}, []string{}
	for _, name := range platform.Names() {
		p, err := platform.Get(name)
		if err != nil {
			continue
		}
		if p.HasHMAT {
			hmatPlatforms = append(hmatPlatforms, name)
		} else {
			benchPlatforms = append(benchPlatforms, name)
		}
	}
	t.Rows = [][]string{
		{"Capacity, Locality", "always supported (from the topology)", "unneeded"},
		{"Bandwidth, Latency", fmt.Sprintf("HMAT on %d/%d platforms", len(hmatPlatforms), len(hmatPlatforms)+len(benchPlatforms)), "benchmarks (internal/bench)"},
		{"R/W Bandwidth, Latency", "on some platforms (HMAT IncludeReadWrite)", "benchmarks"},
		{"Persistence, Endurance, Power", "under investigation", ""},
		{"Custom metrics (e.g. " + "StreamTriadScore)", "n/a", "user-specified (Registry.Register)"},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("platforms with native HMAT: %v", hmatPlatforms),
		fmt.Sprintf("platforms requiring benchmark discovery: %v", benchPlatforms),
		fmt.Sprintf("predefined attributes: %d (see memattr package)", len(memattr.NewRegistry(mustTopo()).IDs())),
	)
	return t
}

func mustTopo() *topology.Topology {
	p, err := platform.Get("xeon")
	if err != nil {
		panic(err)
	}
	return p.Topo
}
