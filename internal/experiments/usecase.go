package experiments

import (
	"fmt"

	"hetmem/internal/alloc"
	"hetmem/internal/core"
	"hetmem/internal/memattr"
	"hetmem/internal/memkind"
	"hetmem/internal/memsim"
)

func init() {
	register("portability", "attribute requests adapt per machine; memkind baseline fails", func() (string, error) {
		t, err := Portability()
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	register("capacity", "capacity conflicts: FCFS vs priority, partial allocation, migration", Capacity)
}

// PortabilityRow records where one request landed on one machine.
type PortabilityRow struct {
	Machine string
	Request string
	Outcome string // memory kind, or "ERROR: ..." for the baseline
}

// PortabilityData runs the Section VI-A portability matrix: the same
// attribute requests on the Xeon and the KNL, against the memkind
// baseline whose hardwired HBW kind only exists on one of them.
func PortabilityData() ([]PortabilityRow, error) {
	var rows []PortabilityRow
	for _, machine := range []string{"xeon", "knl-snc4-flat", "rhea"} {
		sys, err := core.NewSystem(machine, core.Options{})
		if err != nil {
			return nil, err
		}
		ini := sys.InitiatorForGroup(0)
		for _, attr := range []memattr.ID{memattr.Bandwidth, memattr.Latency, memattr.Capacity} {
			buf, dec, err := sys.MemAlloc("probe", 1<<30, attr, ini)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PortabilityRow{
				Machine: machine,
				Request: "attribute " + sys.Registry.Name(attr),
				Outcome: dec.Target.Subtype,
			})
			sys.Free(buf)
		}
		// Baseline: memkind's hardwired HBW.
		mk := memkind.New(sys.Machine, ini)
		if b, err := mk.Malloc(memkind.HBW, "probe", 1<<30); err != nil {
			rows = append(rows, PortabilityRow{machine, "MEMKIND_HBW (baseline)", "ERROR: " + err.Error()})
		} else {
			rows = append(rows, PortabilityRow{machine, "MEMKIND_HBW (baseline)", b.Segments[0].Node.Kind()})
			sys.Free(b)
		}
	}
	return rows, nil
}

// Portability renders the matrix.
func Portability() (*Table, error) {
	rows, err := PortabilityData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "portability",
		Title:  "Same request, per-machine outcome (paper Section VI-A claim)",
		Header: []string{"Machine", "Request", "Placed on"},
		Notes: []string{
			"attribute requests adapt: Bandwidth->MCDRAM on KNL, DRAM on the HBM-less Xeon, HBM on the",
			"HBM+DDR5 generation (rhea); the memkind baseline hardwires the technology and errors where",
			"it does not exist",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Machine, r.Request, r.Outcome})
	}
	return t, nil
}

// Capacity runs the Section VII scenarios on a KNL cluster: a late
// critical buffer under FCFS vs priority planning, a hybrid partial
// allocation, and a phase migration with its cost.
func Capacity() (string, error) {
	out := "Capacity-conflict management (paper Section VII)\n\n"

	// FCFS vs priority.
	reqs := []alloc.Request{
		{Name: "scratch", Size: 3 << 30, Attr: memattr.Bandwidth, Priority: 1},
		{Name: "critical", Size: 3 << 30, Attr: memattr.Bandwidth, Priority: 10},
	}
	for _, mode := range []string{"FCFS", "priority"} {
		sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
		if err != nil {
			return "", err
		}
		ini := sys.InitiatorForGroup(0)
		var placements []alloc.Placement
		if mode == "FCFS" {
			placements = sys.Allocator.PlanFCFS(reqs, ini)
		} else {
			placements = sys.Allocator.PlanPriority(reqs, ini)
		}
		out += fmt.Sprintf("--- %s allocation order ---\n", mode)
		for _, p := range placements {
			if p.Err != nil {
				out += fmt.Sprintf("  %-9s -> error: %v\n", p.Request.Name, p.Err)
				continue
			}
			out += fmt.Sprintf("  %-9s (prio %2d) -> %s\n", p.Request.Name, p.Request.Priority, p.Buffer.NodeNames())
		}
	}

	// Hybrid (partial) allocation.
	sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		return "", err
	}
	ini := sys.InitiatorForGroup(0)
	buf, dec, err := sys.MemAlloc("huge", 26<<30, memattr.Bandwidth, ini, alloc.WithPartial())
	if err != nil {
		return "", err
	}
	out += fmt.Sprintf("\n--- hybrid allocation ---\n  26GiB bandwidth-ranked with WithPartial -> %s (partial=%v)\n",
		buf.NodeNames(), dec.Partial)
	sys.Free(buf)

	// Phase migration.
	buf, _, err = sys.MemAlloc("phase-buf", 2<<30, memattr.Capacity, ini)
	if err != nil {
		return "", err
	}
	cost, mdec, err := sys.Allocator.MigrateToBest(buf, memattr.Bandwidth, ini)
	if err != nil {
		return "", err
	}
	out += fmt.Sprintf("\n--- phase migration ---\n  2GiB buffer %s, migrated to %s for the bandwidth phase: %.3f s\n",
		"capacity-placed on DRAM", mdec.Target.Subtype, cost)
	out += "  (the paper: migration is expensive; only worth it across phases)\n"

	// The Linux preferred-policy restriction our allocator sidesteps.
	dram := sys.Machine.NodeByOS(0)
	mcdram := sys.Machine.NodeByOS(4)
	out += fmt.Sprintf("\n--- Linux preferred-policy restriction ---\n"+
		"  prefer MCDRAM#%d with DRAM#%d fallback allowed by Linux: %v (our allocator: yes)\n",
		mcdram.OSIndex(), dram.OSIndex(), alloc.LinuxPreferredAllowed(mcdram, []*memsim.Node{dram}))
	return out, nil
}
