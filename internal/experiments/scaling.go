package experiments

import (
	"fmt"

	"hetmem/internal/bitmap"
	"hetmem/internal/core"
	"hetmem/internal/graph500"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

func init() {
	register("scaling", "extension: MPI-style Graph500 across KNL clusters, shards on local memory", func() (string, error) {
		t, err := Scaling()
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
}

// ScalingRow is one rank-count measurement.
type ScalingRow struct {
	Ranks        int
	TEPSe8       float64
	Speedup      float64
	CommMBPerBFS float64
}

// ScalingData runs the distributed Graph500 across 1, 2 and 4 KNL
// clusters, each rank's shard on its cluster's DRAM.
func ScalingData() ([]ScalingRow, error) {
	sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		return nil, err
	}
	var inis []*bitmap.Bitmap
	for _, g := range sys.Topology().Objects(topology.Group) {
		inis = append(inis, g.CPUSet.Copy())
	}
	const scale = 23
	s := graph500.Sizes(scale, 16)
	an := graph500.AnalyticStats(scale, 16)
	params := graph500.SimParams{CPUPerEdge: knlCPUPerEdge, MLP: knlMLP}

	var rows []ScalingRow
	var base float64
	for _, p := range []int{1, 2, 4} {
		ranks, err := graph500.AllocRanks(p, s, inis, knlProcs, func(rank int, name string, size uint64) (*memsim.Buffer, error) {
			return sys.Machine.Alloc(name, size, sys.Machine.NodeByOS(rank))
		})
		if err != nil {
			return nil, err
		}
		res := graph500.RunDistributedTEPS(sys.Machine, ranks, []graph500.BFSStats{an, an}, params)
		graph500.FreeRanks(sys.Machine, ranks)
		if p == 1 {
			base = res.HarmonicTEPS
		}
		rows = append(rows, ScalingRow{
			Ranks:        p,
			TEPSe8:       res.HarmonicTEPS / 1e8,
			Speedup:      res.HarmonicTEPS / base,
			CommMBPerBFS: float64(res.CommBytesPerBFS) / (1 << 20),
		})
	}
	return rows, nil
}

// Scaling renders the extension table.
func Scaling() (*Table, error) {
	rows, err := ScalingData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "scaling",
		Title:  "MPI-style Graph500 across KNL clusters (extension; scale 23, shards on local DRAM)",
		Header: []string{"Ranks", "TEPS(e+8)", "Speedup", "Comm MB/BFS/rank"},
		Notes: []string{
			"each rank keeps its shard on its own cluster's memory and reads remote frontier queues;",
			"speedup can exceed rank count slightly (shards fit caches better) before communication bites",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", r.Ranks), f3(r.TEPSe8), f2(r.Speedup), f2(r.CommMBPerBFS)})
	}
	return t, nil
}
