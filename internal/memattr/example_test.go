package memattr_test

import (
	"fmt"
	"log"

	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/topology"
)

// Build a small machine, feed measured attribute values, and run the
// paper's two-step selection: local targets first, then ranked by the
// attribute that matters.
func Example() {
	// One package, two cores, a DRAM and an HBM node.
	root := topology.New(topology.Machine, -1)
	pkg := root.AddChild(topology.New(topology.Package, 0))
	pkg.AddMemChild(topology.NewNUMA(0, "DRAM", 64<<30))
	pkg.AddMemChild(topology.NewNUMA(1, "HBM", 8<<30))
	for c := 0; c < 2; c++ {
		pkg.AddChild(topology.New(topology.Core, c)).AddChild(topology.New(topology.PU, c))
	}
	topo, err := topology.Build(root)
	if err != nil {
		log.Fatal(err)
	}

	reg := memattr.NewRegistry(topo)
	cores := bitmap.NewFromRange(0, 1)
	dram, hbm := topo.NUMANodes()[0], topo.NUMANodes()[1]
	reg.SetValue(memattr.Bandwidth, dram, cores, 100<<10) // MiB/s
	reg.SetValue(memattr.Bandwidth, hbm, cores, 400<<10)
	reg.SetValue(memattr.Latency, dram, cores, 85) // ns
	reg.SetValue(memattr.Latency, hbm, cores, 110)

	for _, attr := range []memattr.ID{memattr.Bandwidth, memattr.Latency, memattr.Capacity} {
		best, _, err := reg.BestLocalTarget(attr, bitmap.NewFromIndexes(0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s -> %s\n", reg.Name(attr), best.Subtype)
	}
	// Output:
	// Bandwidth -> HBM
	// Latency   -> DRAM
	// Capacity  -> DRAM
}

// Composite attributes express custom criteria, like the paper's
// 2-reads-per-write ranking built from read and write bandwidth.
func Example_composite() {
	root := topology.New(topology.Machine, -1)
	pkg := root.AddChild(topology.New(topology.Package, 0))
	pkg.AddMemChild(topology.NewNUMA(0, "DRAM", 64<<30))
	pkg.AddMemChild(topology.NewNUMA(1, "NVDIMM", 512<<30))
	pkg.AddChild(topology.New(topology.Core, 0)).AddChild(topology.New(topology.PU, 0))
	topo, _ := topology.Build(root)

	reg := memattr.NewRegistry(topo)
	pu := bitmap.NewFromIndexes(0)
	dram, nv := topo.NUMANodes()[0], topo.NUMANodes()[1]
	reg.SetValue(memattr.ReadBandwidth, dram, pu, 100)
	reg.SetValue(memattr.WriteBandwidth, dram, pu, 45)
	reg.SetValue(memattr.ReadBandwidth, nv, pu, 30)
	reg.SetValue(memattr.WriteBandwidth, nv, pu, 4)

	id, err := reg.RegisterComposite("RW21", memattr.HigherFirst|memattr.NeedInitiator,
		[]memattr.Term{{Attr: memattr.ReadBandwidth, Weight: 2. / 3}, {Attr: memattr.WriteBandwidth, Weight: 1. / 3}})
	if err != nil {
		log.Fatal(err)
	}
	v, _ := reg.Value(id, dram, pu)
	fmt.Println("DRAM 2R1W score:", v)
	// Output:
	// DRAM 2R1W score: 82
}
