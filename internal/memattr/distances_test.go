package memattr

import (
	"errors"
	"strings"
	"testing"

	"hetmem/internal/bitmap"
)

func TestDistanceMatrix(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	pkg0 := bitmap.NewFromRange(0, 3)
	pkg1 := bitmap.NewFromRange(4, 7)
	// Full latency matrix for the four package-level nodes plus HBM.
	for _, n := range topo.NUMANodes() {
		for _, ini := range []*bitmap.Bitmap{pkg0, pkg1} {
			local := bitmap.Intersects(n.CPUSet, ini)
			v := uint64(80)
			if n.Subtype == "NVDIMM" {
				v = 300
			}
			if n.Subtype == "HBM" {
				v = 80
			}
			if !local {
				v += 60
			}
			if err := r.SetValue(Latency, n, ini, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	d, err := r.DistanceMatrix(Latency)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 5 || len(d.Values) != 5 {
		t.Fatalf("matrix shape %dx%d", len(d.Nodes), len(d.Values))
	}
	// Node OS indexes in buildMini: pkg0 DRAM=0, NVDIMM=1, HBM=2;
	// pkg1 DRAM=3, NVDIMM=4. Local DRAM to itself = 80; pkg0's view of
	// pkg1's DRAM = 140.
	idx := map[int]int{}
	for i, n := range d.Nodes {
		idx[n.OSIndex] = i
	}
	if v := d.Values[idx[0]][idx[0]]; v != 80 {
		t.Fatalf("local DRAM distance = %d", v)
	}
	if v := d.Values[idx[0]][idx[3]]; v != 140 {
		t.Fatalf("remote DRAM distance = %d", v)
	}
	if v := d.Values[idx[0]][idx[1]]; v != 300 {
		t.Fatalf("local NVDIMM distance = %d", v)
	}

	// Normalization: min 80 -> 10; 140 -> 17; 300 -> 37.
	norm := d.Normalized()
	if norm[idx[0]][idx[0]] != 10 || norm[idx[0]][idx[3]] != 17 || norm[idx[0]][idx[1]] != 37 {
		t.Fatalf("normalized = %d %d %d", norm[idx[0]][idx[0]], norm[idx[0]][idx[3]], norm[idx[0]][idx[1]])
	}

	out := d.Render(true)
	if !strings.Contains(out, "normalized") || !strings.Contains(out, "10") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestDistanceMatrixLocalOnlyHasGaps(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	pkg0 := bitmap.NewFromRange(0, 3)
	dram0 := nodeBySub(t, topo, 0, "DRAM")
	if err := r.SetValue(Latency, dram0, pkg0, 80); err != nil {
		t.Fatal(err)
	}
	d, err := r.DistanceMatrix(Latency)
	if err != nil {
		t.Fatal(err)
	}
	// Only one entry known; the render shows "-" for the rest.
	out := d.Render(false)
	if !strings.Contains(out, "-") || !strings.Contains(out, "80") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestDistanceMatrixErrors(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	if _, err := r.DistanceMatrix(ID(99)); !errors.Is(err, ErrUnknownAttr) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.DistanceMatrix(Capacity); err == nil {
		t.Fatal("initiator-less attribute should fail")
	}
}
