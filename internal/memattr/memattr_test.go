package memattr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetmem/internal/bitmap"
	"hetmem/internal/topology"
)

const gb = 1 << 30

// buildMini: 2 packages × (2 cores × 2 PUs), each package with a DRAM
// node and an NVDIMM node; package 0 also carries an HBM node so the
// three kinds coexist.
func buildMini(t *testing.T) *topology.Topology {
	t.Helper()
	root := topology.New(topology.Machine, -1)
	pu := 0
	node := 0
	for p := 0; p < 2; p++ {
		pkg := root.AddChild(topology.New(topology.Package, p))
		pkg.AddMemChild(topology.NewNUMA(node, "DRAM", 96*gb))
		node++
		pkg.AddMemChild(topology.NewNUMA(node, "NVDIMM", 768*gb))
		node++
		if p == 0 {
			pkg.AddMemChild(topology.NewNUMA(node, "HBM", 16*gb))
			node++
		}
		for c := 0; c < 2; c++ {
			core := pkg.AddChild(topology.New(topology.Core, p*2+c))
			for k := 0; k < 2; k++ {
				core.AddChild(topology.New(topology.PU, pu))
				pu++
			}
		}
	}
	topo, err := topology.Build(root)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func nodeBySub(t *testing.T, topo *topology.Topology, pkg int, sub string) *topology.Object {
	t.Helper()
	for _, n := range topo.NUMANodes() {
		if n.Subtype == sub && n.CPUParent().OSIndex == pkg {
			return n
		}
	}
	t.Fatalf("no %s node in package %d", sub, pkg)
	return nil
}

func TestPredefinedAndAutoValues(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)

	for _, name := range []string{"Capacity", "Locality", "Bandwidth", "Latency",
		"ReadBandwidth", "WriteBandwidth", "ReadLatency", "WriteLatency"} {
		if _, ok := r.ByName(name); !ok {
			t.Errorf("predefined attribute %s missing", name)
		}
	}
	dram0 := nodeBySub(t, topo, 0, "DRAM")
	v, err := r.Value(Capacity, dram0, nil)
	if err != nil || v != 96*gb {
		t.Fatalf("Capacity(dram0) = %d, %v", v, err)
	}
	loc, err := r.Value(Locality, dram0, nil)
	if err != nil || loc != 4 {
		t.Fatalf("Locality(dram0) = %d, %v (want 4 local PUs)", loc, err)
	}
	// Initiator is accepted-and-ignored for initiator-less attributes.
	if _, err := r.Value(Capacity, dram0, bitmap.NewFromIndexes(0)); err != nil {
		t.Fatalf("Value(Capacity, ini) = %v", err)
	}
}

func TestBestTargetByCapacity(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	best, v, err := r.BestTarget(Capacity, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.Subtype != "NVDIMM" || v != 768*gb {
		t.Fatalf("best capacity target = %v (%d)", best, v)
	}
	// Tie between the two NVDIMMs breaks toward lower logical index.
	if best.CPUParent().OSIndex != 0 {
		t.Fatalf("tie should break to package 0, got %v", best)
	}
}

func TestRegisterCustom(t *testing.T) {
	r := NewRegistry(buildMini(t))
	id, err := r.Register("StreamTriadScore", HigherFirst|NeedInitiator)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name(id) != "StreamTriadScore" {
		t.Fatalf("Name = %q", r.Name(id))
	}
	if _, err := r.Register("StreamTriadScore", HigherFirst); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate register err = %v", err)
	}
	if _, err := r.Register("Bad", HigherFirst|LowerFirst); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("bad flags err = %v", err)
	}
	if _, err := r.Register("Bad2", NeedInitiator); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("no-direction flags err = %v", err)
	}
	fl, err := r.Flags(id)
	if err != nil || fl != HigherFirst|NeedInitiator {
		t.Fatalf("Flags = %v, %v", fl, err)
	}
	if got := fl.String(); got != "higher-first,need-initiator" {
		t.Fatalf("Flags.String = %q", got)
	}
}

func TestSetValueValidation(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	dram0 := nodeBySub(t, topo, 0, "DRAM")
	ini := bitmap.NewFromRange(0, 3)

	if err := r.SetValue(ID(999), dram0, ini, 1); !errors.Is(err, ErrUnknownAttr) {
		t.Fatalf("unknown attr err = %v", err)
	}
	if err := r.SetValue(Bandwidth, nil, ini, 1); err == nil {
		t.Fatal("nil target should fail")
	}
	if err := r.SetValue(Bandwidth, topo.Root(), ini, 1); err == nil {
		t.Fatal("non-NUMA target should fail")
	}
	if err := r.SetValue(Bandwidth, dram0, nil, 1); err == nil {
		t.Fatal("missing initiator should fail")
	}
	if err := r.SetValue(Bandwidth, dram0, bitmap.New(), 1); err == nil {
		t.Fatal("empty initiator should fail")
	}
	if err := r.SetValue(Capacity, dram0, ini, 1); err == nil {
		t.Fatal("initiator on initiator-less attribute should fail")
	}
	// Overwrite semantics.
	if err := r.SetValue(Bandwidth, dram0, ini, 100); err != nil {
		t.Fatal(err)
	}
	if err := r.SetValue(Bandwidth, dram0, ini, 200); err != nil {
		t.Fatal(err)
	}
	v, err := r.Value(Bandwidth, dram0, ini)
	if err != nil || v != 200 {
		t.Fatalf("overwritten value = %d, %v", v, err)
	}
	ivs, err := r.Initiators(Bandwidth, dram0)
	if err != nil || len(ivs) != 1 {
		t.Fatalf("Initiators = %v, %v (want single entry after overwrite)", ivs, err)
	}
}

func TestInitiatorMatching(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	dram0 := nodeBySub(t, topo, 0, "DRAM")
	pkg0 := bitmap.NewFromRange(0, 3)
	pkg1 := bitmap.NewFromRange(4, 7)

	if err := r.SetValue(Latency, dram0, pkg0, 80); err != nil {
		t.Fatal(err)
	}
	if err := r.SetValue(Latency, dram0, pkg1, 130); err != nil {
		t.Fatal(err)
	}
	// Exact match.
	if v, _ := r.Value(Latency, dram0, pkg0); v != 80 {
		t.Fatalf("exact match = %d", v)
	}
	// Subset match: a single PU of package 0 resolves to the package-0
	// entry (largest overlap).
	if v, _ := r.Value(Latency, dram0, bitmap.NewFromIndexes(2)); v != 80 {
		t.Fatalf("subset match = %d", v)
	}
	if v, _ := r.Value(Latency, dram0, bitmap.NewFromIndexes(6)); v != 130 {
		t.Fatalf("remote subset match = %d", v)
	}
	// Overlapping both: 3 PUs of pkg0 + 1 of pkg1 -> pkg0 entry wins.
	mixed := bitmap.NewFromIndexes(0, 1, 2, 4)
	if v, _ := r.Value(Latency, dram0, mixed); v != 80 {
		t.Fatalf("mixed match = %d", v)
	}
	// Disjoint initiator: no value.
	far := bitmap.NewFromIndexes(100)
	if _, err := r.Value(Latency, dram0, far); !errors.Is(err, ErrNoValue) {
		t.Fatalf("disjoint err = %v", err)
	}
	// Missing initiator on query.
	if _, err := r.Value(Latency, dram0, nil); err == nil {
		t.Fatal("nil initiator query should fail")
	}
}

func TestBestLocalTargetTwoStep(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	pkg0 := bitmap.NewFromRange(0, 3)
	pkg1 := bitmap.NewFromRange(4, 7)

	// Feed bandwidths: HBM (pkg0 only) 350000, DRAM 90000, NVDIMM 10000.
	for p, ini := range []*bitmap.Bitmap{pkg0, pkg1} {
		r.SetValue(Bandwidth, nodeBySub(t, topo, p, "DRAM"), ini, 90000)
		r.SetValue(Bandwidth, nodeBySub(t, topo, p, "NVDIMM"), ini, 10000)
	}
	r.SetValue(Bandwidth, nodeBySub(t, topo, 0, "HBM"), pkg0, 350000)

	// From package 0, the HBM wins.
	best, v, err := r.BestLocalTarget(Bandwidth, bitmap.NewFromIndexes(1))
	if err != nil || best.Subtype != "HBM" || v != 350000 {
		t.Fatalf("best local from pkg0 = %v (%d), %v", best, v, err)
	}
	// From package 1 there is no HBM: DRAM wins. This is the paper's
	// portability claim in miniature — same request, adapted answer.
	best, v, err = r.BestLocalTarget(Bandwidth, bitmap.NewFromIndexes(5))
	if err != nil || best.Subtype != "DRAM" || v != 90000 {
		t.Fatalf("best local from pkg1 = %v (%d), %v", best, v, err)
	}
	// Without a cross-package measurement the HBM is invisible from
	// package 1 (Linux only exposes local performance, per the paper);
	// global BestTarget therefore picks package 1's DRAM.
	best, _, err = r.BestTarget(Bandwidth, bitmap.NewFromIndexes(5))
	if err != nil || best.Subtype != "DRAM" || best.CPUParent().OSIndex != 1 {
		t.Fatalf("global best from pkg1 = %v, %v", best, err)
	}
	// After benchmarking feeds a remote value (fast remote HBM beats
	// local DRAM), global BestTarget finds it — the paper's open
	// question about comparing remote fast memory with local slow one.
	r.SetValue(Bandwidth, nodeBySub(t, topo, 0, "HBM"), pkg1, 200000)
	best, v, err = r.BestTarget(Bandwidth, bitmap.NewFromIndexes(5))
	if err != nil || best.Subtype != "HBM" || v != 200000 {
		t.Fatalf("global best after remote measure = %v (%d), %v", best, v, err)
	}
	// But the *local* two-step selection still prefers local DRAM.
	best, _, err = r.BestLocalTarget(Bandwidth, bitmap.NewFromIndexes(5))
	if err != nil || best.Subtype != "DRAM" {
		t.Fatalf("best local after remote measure = %v, %v", best, err)
	}
}

func TestRankTargetsLowerFirst(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	pkg0 := bitmap.NewFromRange(0, 3)
	r.SetValue(Latency, nodeBySub(t, topo, 0, "DRAM"), pkg0, 80)
	r.SetValue(Latency, nodeBySub(t, topo, 0, "NVDIMM"), pkg0, 300)
	r.SetValue(Latency, nodeBySub(t, topo, 0, "HBM"), pkg0, 80)

	ranked, err := r.RankTargets(Latency, pkg0, topo.LocalNUMANodes(pkg0))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked %d targets", len(ranked))
	}
	// DRAM and HBM tie at 80; DRAM has the lower logical index.
	if ranked[0].Target.Subtype != "DRAM" || ranked[1].Target.Subtype != "HBM" || ranked[2].Target.Subtype != "NVDIMM" {
		t.Fatalf("order = %s %s %s", ranked[0].Target.Subtype, ranked[1].Target.Subtype, ranked[2].Target.Subtype)
	}
}

func TestBestInitiator(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	dram0 := nodeBySub(t, topo, 0, "DRAM")
	pkg0 := bitmap.NewFromRange(0, 3)
	pkg1 := bitmap.NewFromRange(4, 7)
	r.SetValue(Bandwidth, dram0, pkg0, 90000)
	r.SetValue(Bandwidth, dram0, pkg1, 30000)

	ini, v, err := r.BestInitiator(Bandwidth, dram0)
	if err != nil || v != 90000 || !bitmap.Equal(ini, pkg0) {
		t.Fatalf("BestInitiator = %v (%d), %v", ini, v, err)
	}
	if _, _, err := r.BestInitiator(Capacity, dram0); err == nil {
		t.Fatal("BestInitiator on initiator-less attribute should fail")
	}
	hbm := nodeBySub(t, topo, 0, "HBM")
	if _, _, err := r.BestInitiator(Bandwidth, hbm); !errors.Is(err, ErrNoValue) {
		t.Fatalf("no-values err = %v", err)
	}
}

func TestTargetsAndHasValues(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	if !r.HasValues(Capacity) {
		t.Fatal("Capacity should have values")
	}
	if r.HasValues(Bandwidth) {
		t.Fatal("Bandwidth should start empty")
	}
	if got := len(r.Targets(Capacity)); got != 5 {
		t.Fatalf("Capacity targets = %d, want 5", got)
	}
	if r.Targets(ID(999)) != nil {
		t.Fatal("unknown attribute should have nil targets")
	}
}

func TestResolveWithFallback(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	pkg0 := bitmap.NewFromRange(0, 3)
	r.SetValue(Bandwidth, nodeBySub(t, topo, 0, "DRAM"), pkg0, 90000)

	// ReadBandwidth has no values; falls back to Bandwidth.
	id, fell, err := r.ResolveWithFallback(ReadBandwidth)
	if err != nil || !fell || id != Bandwidth {
		t.Fatalf("fallback = %v, %v, %v", id, fell, err)
	}
	// Bandwidth itself resolves directly.
	id, fell, err = r.ResolveWithFallback(Bandwidth)
	if err != nil || fell || id != Bandwidth {
		t.Fatalf("direct = %v, %v, %v", id, fell, err)
	}
	// Latency has no values and no populated fallback.
	if _, _, err := r.ResolveWithFallback(Latency); !errors.Is(err, ErrNoTarget) {
		t.Fatalf("no-values resolve err = %v", err)
	}
	if _, _, err := r.ResolveWithFallback(ID(999)); !errors.Is(err, ErrUnknownAttr) {
		t.Fatalf("unknown resolve err = %v", err)
	}
}

func TestIDsOrder(t *testing.T) {
	r := NewRegistry(buildMini(t))
	custom, _ := r.Register("X", HigherFirst)
	ids := r.IDs()
	if ids[0] != Capacity || ids[len(ids)-1] != custom {
		t.Fatalf("IDs order = %v", ids)
	}
}

func TestQuickBestTargetIsExtremum(t *testing.T) {
	topo := buildMini(t)
	nodes := topo.NUMANodes()
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := NewRegistry(topo)
		ini := bitmap.NewFromRange(0, 7)
		want := uint64(0)
		for _, n := range nodes {
			v := uint64(rnd.Intn(1000)) + 1
			if err := r.SetValue(Bandwidth, n, ini, v); err != nil {
				return false
			}
			if v > want {
				want = v
			}
		}
		_, v, err := r.BestTarget(Bandwidth, ini)
		return err == nil && v == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRankIsMonotone(t *testing.T) {
	topo := buildMini(t)
	nodes := topo.NUMANodes()
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := NewRegistry(topo)
		ini := bitmap.NewFromRange(0, 7)
		for _, n := range nodes {
			if err := r.SetValue(Latency, n, ini, uint64(rnd.Intn(500))+1); err != nil {
				return false
			}
		}
		ranked, err := r.RankTargets(Latency, ini, nodes)
		if err != nil || len(ranked) != len(nodes) {
			return false
		}
		for i := 1; i < len(ranked); i++ {
			if ranked[i].Value < ranked[i-1].Value { // LowerFirst: non-decreasing
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
