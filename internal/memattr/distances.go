package memattr

import (
	"errors"
	"fmt"
	"strings"

	"hetmem/internal/topology"
)

// Distances is the classical NUMA distance matrix (numactl
// --hardware's "node distances" table, hwloc's distances API) derived
// from a performance attribute: entry [i][j] is the attribute value
// for accessing NUMA node j from the locality of NUMA node i. The
// paper's predecessor interfaces navigated machines with exactly such
// matrices; the attribute registry generalizes them, and this adapter
// recovers the old view for tools that still want it.
type Distances struct {
	Attr  ID
	Nodes []*topology.Object
	// Values[i][j] is the value from node i's locality to node j;
	// Missing entries (no recorded value, e.g. Linux local-only
	// exposure) are 0.
	Values [][]uint64
}

// ErrNoCPUNodes is returned when no node has a locality to measure
// from.
var ErrNoCPUNodes = errors.New("memattr: no NUMA node has CPUs in its locality")

// DistanceMatrix builds the matrix for an initiator-dependent
// attribute. Rows for CPU-less nodes (e.g. network-attached memory)
// are all zero.
func (r *Registry) DistanceMatrix(id ID) (*Distances, error) {
	a, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownAttr, int(id))
	}
	if a.flags&NeedInitiator == 0 {
		return nil, fmt.Errorf("memattr: attribute %s has no initiators, no distance matrix", a.name)
	}
	nodes := r.topo.NUMANodes()
	d := &Distances{Attr: id, Nodes: nodes}
	anyCPU := false
	for _, from := range nodes {
		row := make([]uint64, len(nodes))
		if !from.CPUSet.IsZero() {
			anyCPU = true
			for j, to := range nodes {
				if v, err := r.Value(id, to, from.CPUSet); err == nil {
					row[j] = v
				}
			}
		}
		d.Values = append(d.Values, row)
	}
	if !anyCPU {
		return nil, ErrNoCPUNodes
	}
	return d, nil
}

// Normalized rescales the matrix the way numactl reports distances:
// the smallest non-zero entry maps to 10. Zero (missing) entries stay
// zero.
func (d *Distances) Normalized() [][]uint64 {
	var min uint64
	for _, row := range d.Values {
		for _, v := range row {
			if v > 0 && (min == 0 || v < min) {
				min = v
			}
		}
	}
	out := make([][]uint64, len(d.Values))
	for i, row := range d.Values {
		out[i] = make([]uint64, len(row))
		for j, v := range row {
			if v > 0 && min > 0 {
				out[i][j] = v * 10 / min
			}
		}
	}
	return out
}

// Render formats the matrix like `numactl --hardware`.
func (d *Distances) Render(normalized bool) string {
	vals := d.Values
	title := "raw"
	if normalized {
		vals = d.Normalized()
		title = "normalized (min=10)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "node distances, attribute #%d (%s):\n      ", int(d.Attr), title)
	for _, n := range d.Nodes {
		fmt.Fprintf(&sb, "%6d", n.OSIndex)
	}
	sb.WriteString("\n")
	for i, n := range d.Nodes {
		fmt.Fprintf(&sb, "%4d: ", n.OSIndex)
		for j := range d.Nodes {
			if vals[i][j] == 0 {
				sb.WriteString("     -")
			} else {
				fmt.Fprintf(&sb, "%6d", vals[i][j])
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
