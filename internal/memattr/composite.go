package memattr

import (
	"errors"
	"fmt"

	"hetmem/internal/bitmap"
	"hetmem/internal/topology"
)

// Composite attributes implement the paper's footnote on complex
// criteria: "If the memory access pattern is 2 reads for 1 write, one
// may build its own target ranking by combining read/write bandwidths
// from the API". A composite is a custom attribute whose value for
// every (target, initiator) pair is a weighted sum of other
// attributes' values; once registered it participates in BestTarget,
// RankTargets and the allocator exactly like a measured attribute.

// Term is one weighted component of a composite attribute.
type Term struct {
	Attr   ID
	Weight float64
}

// ErrCompositeTerms is wrapped by composite validation failures.
var ErrCompositeTerms = errors.New("memattr: bad composite terms")

// RegisterComposite registers a custom attribute named name and fills
// it for every (target, initiator) pair for which *all* terms have a
// value. The direction flag is given by the caller (e.g. a combined
// bandwidth is HigherFirst; a weighted read/write latency LowerFirst).
// Weights must be non-zero. Values are rounded to the nearest integer.
//
// Example, the footnote's 2-reads-per-write ranking:
//
//	id, err := reg.RegisterComposite("RW21Bandwidth",
//	    memattr.HigherFirst|memattr.NeedInitiator,
//	    []memattr.Term{{memattr.ReadBandwidth, 2. / 3}, {memattr.WriteBandwidth, 1. / 3}})
func (r *Registry) RegisterComposite(name string, flags Flags, terms []Term) (ID, error) {
	if len(terms) == 0 {
		return 0, fmt.Errorf("%w: no terms", ErrCompositeTerms)
	}
	needIni := flags&NeedInitiator != 0
	for _, t := range terms {
		a, ok := r.byID[t.Attr]
		if !ok {
			return 0, fmt.Errorf("%w: unknown attribute %d", ErrCompositeTerms, int(t.Attr))
		}
		if t.Weight == 0 {
			return 0, fmt.Errorf("%w: zero weight for %s", ErrCompositeTerms, a.name)
		}
		if a.flags&NeedInitiator != 0 && !needIni {
			return 0, fmt.Errorf("%w: term %s needs an initiator but the composite does not", ErrCompositeTerms, a.name)
		}
	}
	id, err := r.Register(name, flags)
	if err != nil {
		return 0, err
	}

	// Candidate initiators: the union of initiators recorded for the
	// terms (nil for initiator-less composites).
	for _, tgt := range r.topo.NUMANodes() {
		inis := r.compositeInitiators(terms, tgt, needIni)
		for _, ini := range inis {
			var sum float64
			complete := true
			for _, t := range terms {
				v, err := r.Value(t.Attr, tgt, ini)
				if err != nil {
					complete = false
					break
				}
				sum += t.Weight * float64(v)
			}
			if !complete {
				continue
			}
			if sum < 0 {
				sum = 0
			}
			if err := r.SetValue(id, tgt, ini, uint64(sum+0.5)); err != nil {
				return 0, err
			}
		}
	}
	return id, nil
}

// compositeInitiators collects the distinct initiators recorded for
// the terms on a target.
func (r *Registry) compositeInitiators(terms []Term, tgt *topology.Object, needIni bool) []*bitmap.Bitmap {
	if !needIni {
		return []*bitmap.Bitmap{nil}
	}
	var out []*bitmap.Bitmap
	seen := func(b *bitmap.Bitmap) bool {
		for _, x := range out {
			if bitmap.Equal(x, b) {
				return true
			}
		}
		return false
	}
	for _, t := range terms {
		a := r.byID[t.Attr]
		if a.flags&NeedInitiator == 0 {
			continue
		}
		for _, e := range a.values[tgt] {
			if !seen(e.initiator) {
				out = append(out, e.initiator.Copy())
			}
		}
	}
	return out
}
