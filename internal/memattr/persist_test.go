package memattr

import (
	"strings"
	"testing"

	"hetmem/internal/bitmap"
)

func TestExportImportRoundTrip(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	pkg0 := bitmap.NewFromRange(0, 3)
	dram := nodeBySub(t, topo, 0, "DRAM")
	nv := nodeBySub(t, topo, 0, "NVDIMM")
	if err := r.SetValue(Bandwidth, dram, pkg0, 90000); err != nil {
		t.Fatal(err)
	}
	if err := r.SetValue(Latency, nv, pkg0, 305); err != nil {
		t.Fatal(err)
	}
	id, err := r.Register("StreamTriadScore", HigherFirst|NeedInitiator)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetValue(id, dram, pkg0, 76000); err != nil {
		t.Fatal(err)
	}

	data, err := Export(r)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh registry for the same topology: the "second run" that
	// skips re-benchmarking.
	r2 := NewRegistry(topo)
	if err := Import(data, r2); err != nil {
		t.Fatal(err)
	}
	if v, err := r2.Value(Bandwidth, dram, pkg0); err != nil || v != 90000 {
		t.Fatalf("bandwidth = %d, %v", v, err)
	}
	if v, err := r2.Value(Latency, nv, pkg0); err != nil || v != 305 {
		t.Fatalf("latency = %d, %v", v, err)
	}
	id2, ok := r2.ByName("StreamTriadScore")
	if !ok {
		t.Fatal("custom attribute not re-registered")
	}
	fl, _ := r2.Flags(id2)
	if fl != HigherFirst|NeedInitiator {
		t.Fatalf("custom flags = %v", fl)
	}
	if v, err := r2.Value(id2, dram, pkg0); err != nil || v != 76000 {
		t.Fatalf("custom value = %d, %v", v, err)
	}
	// Import into a registry that already has the custom attribute
	// with the same flags: fine.
	r3 := NewRegistry(topo)
	if _, err := r3.Register("StreamTriadScore", HigherFirst|NeedInitiator); err != nil {
		t.Fatal(err)
	}
	if err := Import(data, r3); err != nil {
		t.Fatal(err)
	}
	// With conflicting flags: rejected.
	r4 := NewRegistry(topo)
	if _, err := r4.Register("StreamTriadScore", LowerFirst); err != nil {
		t.Fatal(err)
	}
	if err := Import(data, r4); err == nil || !strings.Contains(err.Error(), "flags mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestImportErrors(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	if err := Import([]byte("{"), r); err == nil {
		t.Fatal("bad JSON should fail")
	}
	if err := Import([]byte(`{"values":[{"attr":"Nope","target":0,"value":1}]}`), r); err == nil {
		t.Fatal("unknown attribute should fail")
	}
	if err := Import([]byte(`{"values":[{"attr":"Capacity","target":99,"value":1}]}`), r); err == nil {
		t.Fatal("missing node should fail")
	}
	if err := Import([]byte(`{"values":[{"attr":"Bandwidth","target":0,"initiator":"x","value":1}]}`), r); err == nil {
		t.Fatal("bad initiator should fail")
	}
	if err := Import([]byte(`{"custom":[{"name":"X","flags":"sideways"}]}`), r); err == nil {
		t.Fatal("bad flags should fail")
	}
}

func TestParseFlags(t *testing.T) {
	cases := map[string]Flags{
		"higher-first":                   HigherFirst,
		"lower-first":                    LowerFirst,
		"higher-first,need-initiator":    HigherFirst | NeedInitiator,
		" lower-first , need-initiator ": LowerFirst | NeedInitiator,
	}
	for in, want := range cases {
		got, err := ParseFlags(in)
		if err != nil || got != want {
			t.Errorf("ParseFlags(%q) = %v, %v", in, got, err)
		}
	}
	for _, bad := range []string{"", "need-initiator", "higher-first,lower-first", "bogus"} {
		if _, err := ParseFlags(bad); err == nil {
			t.Errorf("ParseFlags(%q) should fail", bad)
		}
	}
	// Round trip through String.
	for _, f := range []Flags{HigherFirst, LowerFirst | NeedInitiator} {
		back, err := ParseFlags(f.String())
		if err != nil || back != f {
			t.Errorf("flags %v round trip = %v, %v", f, back, err)
		}
	}
}
