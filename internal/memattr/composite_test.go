package memattr

import (
	"errors"
	"testing"

	"hetmem/internal/bitmap"
)

func TestRegisterCompositeRW21(t *testing.T) {
	// The paper footnote's case: 2 reads per write.
	topo := buildMini(t)
	r := NewRegistry(topo)
	pkg0 := bitmap.NewFromRange(0, 3)
	dram := nodeBySub(t, topo, 0, "DRAM")
	nv := nodeBySub(t, topo, 0, "NVDIMM")
	// DRAM: read 100, write 50; NVDIMM: read 30, write 4 (GB/s scaled).
	r.SetValue(ReadBandwidth, dram, pkg0, 100)
	r.SetValue(WriteBandwidth, dram, pkg0, 50)
	r.SetValue(ReadBandwidth, nv, pkg0, 30)
	r.SetValue(WriteBandwidth, nv, pkg0, 4)

	id, err := r.RegisterComposite("RW21Bandwidth", HigherFirst|NeedInitiator,
		[]Term{{ReadBandwidth, 2. / 3}, {WriteBandwidth, 1. / 3}})
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Value(id, dram, pkg0)
	if err != nil || v != 83 { // 2/3*100 + 1/3*50 = 83.33 -> 83
		t.Fatalf("dram composite = %d, %v", v, err)
	}
	v, err = r.Value(id, nv, pkg0)
	if err != nil || v != 21 { // 2/3*30 + 1/3*4 = 21.3
		t.Fatalf("nv composite = %d, %v", v, err)
	}
	// It ranks like any attribute.
	best, _, err := r.BestLocalTarget(id, bitmap.NewFromIndexes(0))
	if err != nil || best != dram {
		t.Fatalf("best = %v, %v", best, err)
	}
}

func TestCompositePartialCoverage(t *testing.T) {
	// Targets missing any term get no composite value.
	topo := buildMini(t)
	r := NewRegistry(topo)
	pkg0 := bitmap.NewFromRange(0, 3)
	dram := nodeBySub(t, topo, 0, "DRAM")
	nv := nodeBySub(t, topo, 0, "NVDIMM")
	r.SetValue(ReadBandwidth, dram, pkg0, 100)
	r.SetValue(WriteBandwidth, dram, pkg0, 50)
	r.SetValue(ReadBandwidth, nv, pkg0, 30) // no write bandwidth

	id, err := r.RegisterComposite("RW", HigherFirst|NeedInitiator,
		[]Term{{ReadBandwidth, 0.5}, {WriteBandwidth, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Value(id, dram, pkg0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Value(id, nv, pkg0); !errors.Is(err, ErrNoValue) {
		t.Fatalf("incomplete target err = %v", err)
	}
}

func TestCompositeInitiatorless(t *testing.T) {
	// A composite over initiator-less attributes (capacity discounted
	// by locality) needs no initiator.
	topo := buildMini(t)
	r := NewRegistry(topo)
	id, err := r.RegisterComposite("RoomyAndClose", HigherFirst,
		[]Term{{Capacity, 1e-9}, {Locality, -0.5}})
	if err != nil {
		t.Fatal(err)
	}
	nv := nodeBySub(t, topo, 0, "NVDIMM")
	v, err := r.Value(id, nv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v == 0 {
		t.Fatal("composite value missing")
	}
}

func TestCompositeValidation(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	if _, err := r.RegisterComposite("X", HigherFirst, nil); !errors.Is(err, ErrCompositeTerms) {
		t.Fatalf("no terms err = %v", err)
	}
	if _, err := r.RegisterComposite("X", HigherFirst, []Term{{ID(99), 1}}); !errors.Is(err, ErrCompositeTerms) {
		t.Fatalf("unknown term err = %v", err)
	}
	if _, err := r.RegisterComposite("X", HigherFirst, []Term{{Capacity, 0}}); !errors.Is(err, ErrCompositeTerms) {
		t.Fatalf("zero weight err = %v", err)
	}
	// An initiator-less composite cannot include per-initiator terms.
	if _, err := r.RegisterComposite("X", HigherFirst, []Term{{Bandwidth, 1}}); !errors.Is(err, ErrCompositeTerms) {
		t.Fatalf("initiator mismatch err = %v", err)
	}
	// Duplicate name still caught by Register.
	if _, err := r.RegisterComposite("Capacity", HigherFirst, []Term{{Capacity, 1}}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate err = %v", err)
	}
}

func TestCompositeNegativeClamped(t *testing.T) {
	topo := buildMini(t)
	r := NewRegistry(topo)
	id, err := r.RegisterComposite("Neg", HigherFirst, []Term{{Locality, -1}})
	if err != nil {
		t.Fatal(err)
	}
	dram := nodeBySub(t, topo, 0, "DRAM")
	v, err := r.Value(id, dram, nil)
	if err != nil || v != 0 {
		t.Fatalf("negative composite should clamp to 0: %d, %v", v, err)
	}
}
