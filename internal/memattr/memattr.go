// Package memattr implements the memory-attributes API that is the
// primary contribution of the paper (released as hwloc 2.3's
// hwloc/memattrs.h). It characterizes the NUMA nodes of a topology
// ("targets") with performance attributes — capacity, locality,
// bandwidth, latency, read/write variants, and user-defined metrics —
// possibly relative to an "initiator" (a set of processors performing
// the accesses).
//
// The intended placement workflow, per the paper:
//
//  1. select the targets local to the cores where the application runs
//     (NUMA affinity): topology.LocalNUMANodes;
//  2. compare those targets for the attribute that matters to the
//     buffer being allocated (memory-kind affinity): Registry.BestTarget
//     or Registry.RankTargets;
//  3. allocate, falling back along the ranking when a target is full
//     (implemented by internal/alloc).
//
// Because placement decisions only need an ordering of targets, values
// do not need to be precise; firmware-provided theoretical numbers
// (internal/hmat) and benchmark measurements (internal/bench) are both
// acceptable sources.
package memattr

import (
	"errors"
	"fmt"
	"sort"

	"hetmem/internal/bitmap"
	"hetmem/internal/topology"
)

// Flags describe how an attribute behaves.
type Flags uint

const (
	// HigherFirst means larger values are better (bandwidth, capacity).
	HigherFirst Flags = 1 << iota
	// LowerFirst means smaller values are better (latency, locality).
	LowerFirst
	// NeedInitiator means values depend on which cores perform the
	// accesses, so they are stored and queried per initiator.
	NeedInitiator
)

func (f Flags) valid() bool {
	hi, lo := f&HigherFirst != 0, f&LowerFirst != 0
	return hi != lo // exactly one direction
}

// String lists the flag names, e.g. "higher-first,need-initiator".
func (f Flags) String() string {
	s := ""
	if f&HigherFirst != 0 {
		s = "higher-first"
	}
	if f&LowerFirst != 0 {
		if s != "" {
			s += ","
		}
		s += "lower-first"
	}
	if f&NeedInitiator != 0 {
		if s != "" {
			s += ","
		}
		s += "need-initiator"
	}
	return s
}

// ID identifies an attribute within a Registry. The predefined IDs
// below mirror hwloc's HWLOC_MEMATTR_ID_*; custom attributes get IDs
// from Register.
type ID int

const (
	// Capacity is the node capacity in bytes. Higher is better. No
	// initiator. Always discovered natively from the topology.
	Capacity ID = iota
	// Locality is the number of PUs in the target's locality; smaller
	// means the node is attached closer to a specific part of the
	// machine. Lower is better. No initiator. Always discovered
	// natively.
	Locality
	// Bandwidth is the access bandwidth in MiB/s from an initiator to
	// a target. Higher is better.
	Bandwidth
	// Latency is the access latency in nanoseconds from an initiator
	// to a target. Lower is better.
	Latency
	// ReadBandwidth and WriteBandwidth separate the two directions
	// when the platform exposes them.
	ReadBandwidth
	WriteBandwidth
	// ReadLatency and WriteLatency separate the two directions.
	ReadLatency
	WriteLatency

	firstCustomID
)

var predefined = []struct {
	id    ID
	name  string
	flags Flags
}{
	{Capacity, "Capacity", HigherFirst},
	{Locality, "Locality", LowerFirst},
	{Bandwidth, "Bandwidth", HigherFirst | NeedInitiator},
	{Latency, "Latency", LowerFirst | NeedInitiator},
	{ReadBandwidth, "ReadBandwidth", HigherFirst | NeedInitiator},
	{WriteBandwidth, "WriteBandwidth", HigherFirst | NeedInitiator},
	{ReadLatency, "ReadLatency", LowerFirst | NeedInitiator},
	{WriteLatency, "WriteLatency", LowerFirst | NeedInitiator},
}

// fallbacks maps an attribute to similar attributes to try when the
// requested one has no values on this platform, per the paper's
// allocator design ("Bandwidth instead of Read Bandwidth").
var fallbacks = map[ID][]ID{
	ReadBandwidth:  {Bandwidth},
	WriteBandwidth: {Bandwidth},
	ReadLatency:    {Latency},
	WriteLatency:   {Latency},
	Bandwidth:      {ReadBandwidth},
	Latency:        {ReadLatency},
}

// Errors returned by Registry queries.
var (
	ErrUnknownAttr = errors.New("memattr: unknown attribute")
	ErrNoValue     = errors.New("memattr: no value for this target/initiator")
	ErrDuplicate   = errors.New("memattr: attribute name already registered")
	ErrBadFlags    = errors.New("memattr: flags must set exactly one of HigherFirst/LowerFirst")
	ErrNoTarget    = errors.New("memattr: no target has a value for this attribute/initiator")
)

// valueEntry stores one measured/declared value, with the initiator it
// was recorded for (nil for initiator-less attributes).
type valueEntry struct {
	initiator *bitmap.Bitmap
	value     uint64
}

type attribute struct {
	id     ID
	name   string
	flags  Flags
	values map[*topology.Object][]valueEntry
}

// better reports whether a beats b under this attribute's direction.
func (a *attribute) better(va, vb uint64) bool {
	if a.flags&HigherFirst != 0 {
		return va > vb
	}
	return va < vb
}

// Registry holds the attributes of one topology.
type Registry struct {
	topo    *topology.Topology
	byID    map[ID]*attribute
	byName  map[string]ID
	nextID  ID
	ordered []ID // registration order, for stable reporting
}

// NewRegistry creates a registry for the given topology with all
// predefined attributes registered. Capacity and Locality are filled
// immediately from the topology itself (they are always discoverable
// natively, per Table I of the paper); performance attributes start
// empty and are fed by internal/hmat or internal/bench.
func NewRegistry(topo *topology.Topology) *Registry {
	r := &Registry{
		topo:   topo,
		byID:   make(map[ID]*attribute),
		byName: make(map[string]ID),
		nextID: firstCustomID,
	}
	for _, p := range predefined {
		r.byID[p.id] = &attribute{
			id:     p.id,
			name:   p.name,
			flags:  p.flags,
			values: make(map[*topology.Object][]valueEntry),
		}
		r.byName[p.name] = p.id
		r.ordered = append(r.ordered, p.id)
	}
	for _, n := range topo.NUMANodes() {
		r.mustSet(Capacity, n, nil, n.Memory)
		r.mustSet(Locality, n, nil, uint64(n.CPUSet.Weight()))
	}
	return r
}

// Topology returns the topology this registry describes.
func (r *Registry) Topology() *topology.Topology { return r.topo }

// Register adds a custom attribute (e.g. "StreamTriadScore") and
// returns its ID. Names must be unique; flags must select exactly one
// ordering direction.
func (r *Registry) Register(name string, flags Flags) (ID, error) {
	if !flags.valid() {
		return 0, ErrBadFlags
	}
	if _, dup := r.byName[name]; dup {
		return 0, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	id := r.nextID
	r.nextID++
	r.byID[id] = &attribute{
		id:     id,
		name:   name,
		flags:  flags,
		values: make(map[*topology.Object][]valueEntry),
	}
	r.byName[name] = id
	r.ordered = append(r.ordered, id)
	return id, nil
}

// ByName resolves an attribute name to its ID.
func (r *Registry) ByName(name string) (ID, bool) {
	id, ok := r.byName[name]
	return id, ok
}

// Name returns the attribute's name, or "" if unknown.
func (r *Registry) Name(id ID) string {
	if a, ok := r.byID[id]; ok {
		return a.name
	}
	return ""
}

// Flags returns the attribute's flags.
func (r *Registry) Flags(id ID) (Flags, error) {
	a, ok := r.byID[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownAttr, int(id))
	}
	return a.flags, nil
}

// IDs returns all attribute IDs in registration order (predefined
// first).
func (r *Registry) IDs() []ID {
	out := make([]ID, len(r.ordered))
	copy(out, r.ordered)
	return out
}

func (r *Registry) mustSet(id ID, target *topology.Object, initiator *bitmap.Bitmap, v uint64) {
	if err := r.SetValue(id, target, initiator, v); err != nil {
		panic(err)
	}
}

// SetValue records a value for (attribute, target, initiator). For
// initiator-less attributes the initiator must be nil; for
// initiator-dependent attributes it must be a non-empty cpuset.
// Setting a value for the same (target, initiator) pair overwrites the
// previous one, so re-running discovery refreshes the registry.
func (r *Registry) SetValue(id ID, target *topology.Object, initiator *bitmap.Bitmap, v uint64) error {
	a, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownAttr, int(id))
	}
	if target == nil || target.Type != topology.NUMANode {
		return fmt.Errorf("memattr: target must be a NUMANode, got %v", target)
	}
	if a.flags&NeedInitiator != 0 {
		if initiator == nil || initiator.IsZero() {
			return fmt.Errorf("memattr: attribute %s needs a non-empty initiator", a.name)
		}
		initiator = initiator.Copy()
	} else if initiator != nil {
		return fmt.Errorf("memattr: attribute %s takes no initiator", a.name)
	}
	entries := a.values[target]
	for i := range entries {
		if sameInitiator(entries[i].initiator, initiator) {
			entries[i].value = v
			return nil
		}
	}
	a.values[target] = append(entries, valueEntry{initiator: initiator, value: v})
	return nil
}

func sameInitiator(a, b *bitmap.Bitmap) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return bitmap.Equal(a, b)
}

// Value returns the attribute value for the target as seen from the
// initiator. For initiator-less attributes pass a nil initiator (a
// non-nil one is accepted and ignored, easing generic callers).
//
// Initiator matching follows hwloc: an exact cpuset match wins;
// otherwise the stored initiator with the largest overlap with the
// query is used (so asking from one PU finds the value recorded for
// the whole local package). ErrNoValue is returned when nothing
// matches.
func (r *Registry) Value(id ID, target *topology.Object, initiator *bitmap.Bitmap) (uint64, error) {
	a, ok := r.byID[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownAttr, int(id))
	}
	entries := a.values[target]
	if len(entries) == 0 {
		return 0, ErrNoValue
	}
	if a.flags&NeedInitiator == 0 {
		return entries[0].value, nil
	}
	if initiator == nil || initiator.IsZero() {
		return 0, fmt.Errorf("memattr: attribute %s needs a non-empty initiator", a.name)
	}
	bestOverlap := 0
	var best *valueEntry
	for i := range entries {
		e := &entries[i]
		if bitmap.Equal(e.initiator, initiator) {
			return e.value, nil
		}
		if ov := bitmap.AndNew(e.initiator, initiator).Weight(); ov > bestOverlap {
			bestOverlap = ov
			best = e
		}
	}
	if best == nil {
		return 0, ErrNoValue
	}
	return best.value, nil
}

// TargetValue pairs a target with its value for some attribute.
type TargetValue struct {
	Target *topology.Object
	Value  uint64
}

// BestTarget returns the target with the best value for the attribute
// as seen from the initiator, among all targets that have a value,
// mirroring hwloc_memattr_get_best_target. Ties break toward the
// lower NUMA logical index for determinism. ErrNoTarget is returned
// when no target has a value.
func (r *Registry) BestTarget(id ID, initiator *bitmap.Bitmap) (*topology.Object, uint64, error) {
	ranked, err := r.RankTargets(id, initiator, r.topo.NUMANodes())
	if err != nil {
		return nil, 0, err
	}
	if len(ranked) == 0 {
		return nil, 0, ErrNoTarget
	}
	return ranked[0].Target, ranked[0].Value, nil
}

// BestLocalTarget is the paper's two-step selection in one call: it
// restricts candidates to the NUMA nodes local to the initiator, then
// ranks them by the attribute. This is what the heterogeneous
// allocator uses.
func (r *Registry) BestLocalTarget(id ID, initiator *bitmap.Bitmap) (*topology.Object, uint64, error) {
	ranked, err := r.RankTargets(id, initiator, r.topo.LocalNUMANodes(initiator))
	if err != nil {
		return nil, 0, err
	}
	if len(ranked) == 0 {
		return nil, 0, ErrNoTarget
	}
	return ranked[0].Target, ranked[0].Value, nil
}

// RankTargets orders the given candidate targets from best to worst
// for the attribute as seen from the initiator. Targets without a
// value are omitted. Ties break toward lower logical index so the
// ranking is deterministic.
func (r *Registry) RankTargets(id ID, initiator *bitmap.Bitmap, candidates []*topology.Object) ([]TargetValue, error) {
	a, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownAttr, int(id))
	}
	out := make([]TargetValue, 0, len(candidates))
	for _, tgt := range candidates {
		v, err := r.Value(id, tgt, initiator)
		if errors.Is(err, ErrNoValue) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out = append(out, TargetValue{tgt, v})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return a.better(out[i].Value, out[j].Value)
		}
		return out[i].Target.LogicalIndex < out[j].Target.LogicalIndex
	})
	return out, nil
}

// InitiatorValue pairs an initiator cpuset with its value for some
// (attribute, target).
type InitiatorValue struct {
	Initiator *bitmap.Bitmap
	Value     uint64
}

// BestInitiator returns the initiator with the best value for the
// given attribute and target, mirroring hwloc_memattr_get_best_initiator.
// It fails for initiator-less attributes.
func (r *Registry) BestInitiator(id ID, target *topology.Object) (*bitmap.Bitmap, uint64, error) {
	a, ok := r.byID[id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %d", ErrUnknownAttr, int(id))
	}
	if a.flags&NeedInitiator == 0 {
		return nil, 0, fmt.Errorf("memattr: attribute %s has no initiators", a.name)
	}
	entries := a.values[target]
	if len(entries) == 0 {
		return nil, 0, ErrNoValue
	}
	best := entries[0]
	for _, e := range entries[1:] {
		if a.better(e.value, best.value) {
			best = e
		}
	}
	return best.initiator.Copy(), best.value, nil
}

// Initiators returns all recorded (initiator, value) pairs for the
// attribute and target, in recording order.
func (r *Registry) Initiators(id ID, target *topology.Object) ([]InitiatorValue, error) {
	a, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownAttr, int(id))
	}
	entries := a.values[target]
	out := make([]InitiatorValue, 0, len(entries))
	for _, e := range entries {
		var ini *bitmap.Bitmap
		if e.initiator != nil {
			ini = e.initiator.Copy()
		}
		out = append(out, InitiatorValue{ini, e.value})
	}
	return out, nil
}

// Targets returns the targets that have at least one value for the
// attribute, in logical order.
func (r *Registry) Targets(id ID) []*topology.Object {
	a, ok := r.byID[id]
	if !ok {
		return nil
	}
	var out []*topology.Object
	for _, n := range r.topo.NUMANodes() {
		if len(a.values[n]) > 0 {
			out = append(out, n)
		}
	}
	return out
}

// HasValues reports whether any target has a value for the attribute.
// The heterogeneous allocator uses this to decide whether to fall back
// to a similar attribute.
func (r *Registry) HasValues(id ID) bool { return len(r.Targets(id)) > 0 }

// ResolveWithFallback returns id itself if it has values, otherwise
// the first similar attribute (per the paper: Bandwidth instead of
// ReadBandwidth, ...) that does. The boolean reports whether a
// fallback was taken. ErrNoTarget is returned when nothing has values.
func (r *Registry) ResolveWithFallback(id ID) (ID, bool, error) {
	if _, ok := r.byID[id]; !ok {
		return 0, false, fmt.Errorf("%w: %d", ErrUnknownAttr, int(id))
	}
	if r.HasValues(id) {
		return id, false, nil
	}
	for _, fb := range fallbacks[id] {
		if r.HasValues(fb) {
			return fb, true, nil
		}
	}
	return 0, false, fmt.Errorf("%w: attribute %s (and fallbacks) has no values", ErrNoTarget, r.Name(id))
}
