package memattr

import (
	"encoding/json"
	"fmt"
	"strings"

	"hetmem/internal/bitmap"
	"hetmem/internal/topology"
)

// The persistence format lets a measurement campaign (internal/bench)
// be saved and re-applied on later runs of the same machine without
// re-benchmarking — the workflow the paper implies when it says
// measured values "may be fed to hwloc". Custom attributes are saved
// with their flags so Import can re-register them.

type persistValue struct {
	Attr      string `json:"attr"`
	TargetOS  int    `json:"target"`
	Initiator string `json:"initiator,omitempty"` // cpuset list format
	Value     uint64 `json:"value"`
}

type persistCustom struct {
	Name  string `json:"name"`
	Flags string `json:"flags"`
}

type persistDump struct {
	Custom []persistCustom `json:"custom,omitempty"`
	Values []persistValue  `json:"values"`
}

// ParseFlags parses the Flags.String format ("higher-first,
// need-initiator").
func ParseFlags(s string) (Flags, error) {
	var f Flags
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "higher-first":
			f |= HigherFirst
		case "lower-first":
			f |= LowerFirst
		case "need-initiator":
			f |= NeedInitiator
		case "":
		default:
			return 0, fmt.Errorf("memattr: unknown flag %q", part)
		}
	}
	if !f.valid() {
		return 0, ErrBadFlags
	}
	return f, nil
}

// Export serializes every attribute value in the registry (custom
// attribute definitions included) as JSON.
func Export(r *Registry) ([]byte, error) {
	var d persistDump
	for _, id := range r.IDs() {
		a := r.byID[id]
		if id >= firstCustomID {
			d.Custom = append(d.Custom, persistCustom{Name: a.name, Flags: a.flags.String()})
		}
		for _, tgt := range r.Targets(id) {
			for _, e := range a.values[tgt] {
				pv := persistValue{Attr: a.name, TargetOS: tgt.OSIndex, Value: e.value}
				if e.initiator != nil {
					pv.Initiator = e.initiator.ListString()
				}
				d.Values = append(d.Values, pv)
			}
		}
	}
	return json.MarshalIndent(d, "", "  ")
}

// Import applies previously exported values to a registry built for
// the same topology: custom attributes are registered if missing
// (flags must agree when they already exist), and every value is set.
func Import(data []byte, r *Registry) error {
	var d persistDump
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("memattr: bad dump: %w", err)
	}
	for _, c := range d.Custom {
		flags, err := ParseFlags(c.Flags)
		if err != nil {
			return fmt.Errorf("memattr: custom attribute %q: %w", c.Name, err)
		}
		if id, ok := r.ByName(c.Name); ok {
			have, _ := r.Flags(id)
			if have != flags {
				return fmt.Errorf("memattr: custom attribute %q flags mismatch: have %s, dump %s",
					c.Name, have, flags)
			}
			continue
		}
		if _, err := r.Register(c.Name, flags); err != nil {
			return err
		}
	}
	topo := r.Topology()
	for _, v := range d.Values {
		id, ok := r.ByName(v.Attr)
		if !ok {
			return fmt.Errorf("memattr: dump references unknown attribute %q", v.Attr)
		}
		tgt := topo.ObjectByOS(topology.NUMANode, v.TargetOS)
		if tgt == nil {
			return fmt.Errorf("memattr: dump references missing NUMA node P#%d", v.TargetOS)
		}
		var ini *bitmap.Bitmap
		if v.Initiator != "" {
			var err error
			ini, err = bitmap.ParseList(v.Initiator)
			if err != nil {
				return fmt.Errorf("memattr: bad initiator %q: %w", v.Initiator, err)
			}
		}
		if err := r.SetValue(id, tgt, ini, v.Value); err != nil {
			return err
		}
	}
	return nil
}
