package jsonenc_test

import (
	"encoding/json"
	"math"
	"testing"

	"hetmem/internal/jsonenc"
)

// TestAppendStringMatchesEncodingJSON pins the escaping against the
// standard library (with HTML escaping off, which the daemon never
// relied on): whatever encoding/json would emit for a string, the
// zero-alloc encoder must emit byte-for-byte.
func TestAppendStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"",
		"plain",
		"with \"quotes\" and \\backslash",
		"newline\nreturn\rtab\t",
		"control \x00 \x01 \x1f bytes",
		"unicode: héllo wörld ✓ 漢字",
		"invalid utf8: \xff\xfe",
		"DRAM#0+MCDRAM#4",
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		got := jsonenc.AppendString(nil, s)
		if string(got) != string(want) {
			t.Errorf("AppendString(%q) = %s, encoding/json says %s", s, got, want)
		}
		// And it must round-trip (invalid UTF-8 comes back as U+FFFD,
		// exactly as encoding/json would have it).
		var back string
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("AppendString(%q) produced unparseable JSON %s: %v", s, got, err)
		}
		var wantBack string
		if err := json.Unmarshal(want, &wantBack); err != nil {
			t.Fatal(err)
		}
		if back != wantBack {
			t.Errorf("AppendString(%q) round-tripped to %q, encoding/json to %q", s, back, wantBack)
		}
	}
}

func TestAppendFloatMatchesEncodingJSON(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, 3.25, 300, 1e-7, 2.5e21, 1e21, 9.999999e20,
		123456.789, 0.000001, 1e-6, 60.0, 0.1,
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		got := jsonenc.AppendFloat(nil, f)
		if string(got) != string(want) {
			t.Errorf("AppendFloat(%v) = %s, encoding/json says %s", f, got, want)
		}
	}
	// Non-finite values cannot appear in JSON; the encoder degrades to 0
	// instead of corrupting the stream.
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := string(jsonenc.AppendFloat(nil, f)); got != "0" {
			t.Errorf("AppendFloat(%v) = %s, want 0", f, got)
		}
	}
}

func TestAppendKeySeparators(t *testing.T) {
	b := append([]byte(nil), '{')
	b = jsonenc.AppendKey(b, "a")
	b = jsonenc.AppendUint(b, 1)
	b = jsonenc.AppendKey(b, "b")
	b = jsonenc.AppendBool(b, true)
	b = append(b, '}')
	if string(b) != `{"a":1,"b":true}` {
		t.Fatalf("got %s", b)
	}
}

func TestAppendStringZeroAlloc(t *testing.T) {
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = jsonenc.AppendString(buf[:0], "a plain label with spaces")
		buf = jsonenc.AppendUint(buf, 12345)
		buf = jsonenc.AppendFloat(buf, 1.5)
	})
	if allocs != 0 {
		t.Fatalf("append helpers allocated %.1f times per run, want 0", allocs)
	}
}
