// Package jsonenc is the zero-allocation JSON encoding kernel shared
// by the daemon's hot paths (internal/server responses, internal/journal
// record frames). Every function appends into a caller-owned []byte and
// returns the extended slice, so a pooled buffer makes an entire
// encode allocation-free; none of them reflect, and the output is plain
// UTF-8 JSON that encoding/json round-trips.
//
// The encoders deliberately cover only what the daemon emits — strings,
// uint64s, int64s, floats, bools — not general values. Anything
// structured is assembled by the caller with the separators it needs.
package jsonenc

import (
	"math"
	"strconv"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// safeSet marks the ASCII bytes that need no escaping inside a JSON
// string (mirrors encoding/json's safe set with HTML escaping off).
var safeSet = func() (s [utf8.RuneSelf]bool) {
	for i := 0x20; i < utf8.RuneSelf; i++ {
		s[i] = true
	}
	s['"'] = false
	s['\\'] = false
	return
}()

// AppendString appends s as a quoted, escaped JSON string.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			if safeSet[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '"', '\\':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control characters become \u00XX.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// Invalid UTF-8 is replaced, matching encoding/json.
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// AppendUint appends an unsigned integer.
func AppendUint(dst []byte, v uint64) []byte {
	return strconv.AppendUint(dst, v, 10)
}

// AppendInt appends a signed integer.
func AppendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// AppendFloat appends a float the way encoding/json does: shortest
// representation, exponent form only outside [1e-6, 1e21), and
// non-finite values (which JSON cannot carry) as 0.
func AppendFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	n := len(dst)
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, matching encoding/json.
		if e := len(dst) - 4; e >= n && dst[e] == 'e' && dst[e+2] == '0' {
			dst[e+2] = dst[e+3]
			dst = dst[:len(dst)-1]
		}
	}
	return dst
}

// AppendBool appends true or false.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// AppendKey appends `,"name":` (or `"name":` when dst ends in '{'),
// assuming name needs no escaping — every key the daemon emits is a
// fixed ASCII literal.
func AppendKey(dst []byte, name string) []byte {
	if n := len(dst); n > 0 && dst[n-1] != '{' && dst[n-1] != '[' {
		dst = append(dst, ',')
	}
	dst = append(dst, '"')
	dst = append(dst, name...)
	return append(dst, '"', ':')
}
