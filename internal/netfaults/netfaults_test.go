package netfaults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// startEcho serves a trivial HTTP endpoint and returns its host:port.
func startEcho(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong pong pong pong pong pong pong pong")
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func startProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := NewProxy(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// fetch does one GET through the proxy with a short overall deadline,
// on a fresh connection (no pooling — each call exercises the proxy's
// accept path).
func fetch(p *Proxy, timeout time.Duration) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+p.Addr()+"/", nil)
	cl := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := cl.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestProxyTransparentWhenHealthy(t *testing.T) {
	p := startProxy(t, startEcho(t))
	body, err := fetch(p, 2*time.Second)
	if err != nil {
		t.Fatalf("healthy proxy failed: %v", err)
	}
	if !strings.Contains(body, "pong") {
		t.Fatalf("healthy proxy corrupted the body: %q", body)
	}
}

func TestSymmetricPartitionRefusesAndResets(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetPartition(true, false, false)
	if _, err := fetch(p, time.Second); err == nil {
		t.Fatal("request through a symmetric partition succeeded")
	}
	p.SetPartition(false, false, false)
	if _, err := fetch(p, 2*time.Second); err != nil {
		t.Fatalf("healed link still failing: %v", err)
	}
}

func TestAsymmetricPartitionHangsUntilDeadline(t *testing.T) {
	for _, tc := range []struct {
		name    string
		in, out bool
	}{
		{"inbound-blackhole", true, false},
		{"outbound-blackhole", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := startProxy(t, startEcho(t))
			p.SetPartition(false, tc.in, tc.out)
			start := time.Now()
			_, err := fetch(p, 300*time.Millisecond)
			if err == nil {
				t.Fatal("request through a blackholed direction succeeded")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("blackhole should surface as a deadline, got: %v", err)
			}
			if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
				t.Fatalf("failed after %v; a blackhole must hang, not reset", elapsed)
			}
		})
	}
}

func TestLatencyInjection(t *testing.T) {
	p := startProxy(t, startEcho(t))
	base := time.Now()
	if _, err := fetch(p, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	nominal := time.Since(base)

	p.SetLatency(100 * time.Millisecond)
	start := time.Now()
	if _, err := fetch(p, 5*time.Second); err != nil {
		t.Fatalf("slow link failed outright: %v", err)
	}
	if d := time.Since(start); d < nominal+150*time.Millisecond {
		t.Fatalf("injected latency not observed: %v vs nominal %v", d, nominal)
	}
}

func TestDropAndTruncateMidBody(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.DropNextConns(1)
	if body, err := fetch(p, 2*time.Second); err == nil {
		t.Fatalf("mid-body drop delivered a clean response: %q", body)
	}
	// The armed burst drains: the next connection is clean.
	if _, err := fetch(p, 2*time.Second); err != nil {
		t.Fatalf("link still broken after drop burst drained: %v", err)
	}

	p.TruncateNextResponses(1)
	if body, err := fetch(p, 2*time.Second); err == nil {
		t.Fatalf("truncated response read cleanly: %q", body)
	}
	if _, err := fetch(p, 2*time.Second); err != nil {
		t.Fatalf("link still broken after truncate burst drained: %v", err)
	}
}

func TestInjectorFlapBeats(t *testing.T) {
	p := startProxy(t, startEcho(t))
	in := NewInjector([]*Proxy{p})
	if err := in.Apply(Event{Link: 0, Kind: Flap, Beat: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fetch(p, 500*time.Millisecond); err == nil {
		t.Fatal("odd flap beat should partition the link")
	}
	if err := in.Apply(Event{Link: 0, Kind: Flap, Beat: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := fetch(p, 2*time.Second); err != nil {
		t.Fatalf("even flap beat should heal the link: %v", err)
	}
	if err := in.Apply(Event{Link: 3, Kind: Heal}); !errors.Is(err, ErrUnknownLink) {
		t.Fatalf("unknown link accepted: %v", err)
	}
}

func TestSetTargetRepoints(t *testing.T) {
	p := startProxy(t, startEcho(t))
	// Point at a dead port: new connections fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	p.SetTarget(dead)
	if _, err := fetch(p, time.Second); err == nil {
		t.Fatal("fetch through dead target succeeded")
	}
	p.SetTarget(startEcho(t))
	if _, err := fetch(p, 2*time.Second); err != nil {
		t.Fatalf("re-pointed proxy failed: %v", err)
	}
}

// The determinism contract the chaostest replay flag depends on: the
// same seed yields byte-for-byte the same schedule, a different seed a
// different one, and the plan never cuts every link at once and always
// ends healed.
func TestRandomPlanDeterministicAndSafe(t *testing.T) {
	const links = 4
	a := RandomPlan(42, 60, links, RandomOptions{})
	b := RandomPlan(42, 60, links, RandomOptions{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if c := RandomPlan(43, 60, links, RandomOptions{}); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	if len(a.Events) == 0 {
		t.Fatal("empty plan")
	}

	// Replay the schedule's partition bookkeeping: at no step may every
	// link be down, and after the final heal step nothing is.
	down := map[int]bool{}
	for _, ev := range a.Events {
		switch ev.Kind {
		case PartitionSym, PartitionIn, PartitionOut:
			down[ev.Link] = true
		case Flap:
			if ev.Beat%2 == 1 {
				down[ev.Link] = true
			} else {
				delete(down, ev.Link)
			}
		case Heal:
			delete(down, ev.Link)
		}
		if len(down) >= links {
			t.Fatalf("plan cut every link at %v", ev)
		}
	}
	if len(down) != 0 {
		t.Fatalf("plan ended with %d links still down", len(down))
	}
}
