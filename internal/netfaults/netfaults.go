// Package netfaults injects the network failure modes a real HPC
// fabric exhibits between a cluster router and its member daemons:
// symmetric and asymmetric partitions, added latency, connections
// dropped mid-body, truncated responses, and flapping links.
//
// The injection point is a Proxy — an in-process TCP relay that sits
// on one router→member link. Healthy, it is a transparent byte pipe;
// faulted, it misbehaves in precisely one of the ways above. Because
// the proxy works at the transport layer, the router's HTTP client
// sees exactly what a broken switch or a congested spine would
// produce: hangs (blackholed directions), resets (cut links), and
// short reads (truncation) — not polite error responses.
//
// Everything is deterministic and seedable, mirroring internal/faults:
// a Plan is an ordered script of Events, RandomPlan derives one from a
// seed, and an Injector applies events to the proxies. Chaos runs and
// unit tests share one fault vocabulary.
package netfaults

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Kind enumerates network fault event types.
type Kind int

// The network fault kinds.
const (
	// PartitionSym cuts the link both ways: existing connections are
	// reset and new ones are refused, exactly like a pulled cable.
	PartitionSym Kind = iota
	// PartitionIn blackholes the inbound (router→member) direction:
	// connections open, but request bytes vanish before the member. The
	// caller hangs until its deadline.
	PartitionIn
	// PartitionOut blackholes the outbound (member→router) direction:
	// the member processes requests but its responses vanish. The
	// ambiguous failure — work done, answer lost.
	PartitionOut
	// Heal removes any partition on the link.
	Heal
	// Latency adds a fixed delay to every transfer direction startup on
	// the link (Delay; 0 restores nominal).
	Latency
	// DropConn arms the link to reset its next Count connections
	// mid-body: some response bytes flow, then the connection dies.
	DropConn
	// Truncate arms the link to truncate the next Count responses: the
	// first chunk is delivered, then the connection closes cleanly —
	// a short body the client must detect.
	Truncate
	// Flap marks one beat of a flapping link: odd beats partition the
	// link symmetrically, even beats heal it. RandomPlan emits these in
	// bursts so a link bounces several times in a few steps.
	Flap
)

var kindNames = map[Kind]string{
	PartitionSym: "partition",
	PartitionIn:  "partition-in",
	PartitionOut: "partition-out",
	Heal:         "heal",
	Latency:      "latency",
	DropConn:     "drop-conn",
	Truncate:     "truncate",
	Flap:         "flap",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scripted network fault.
type Event struct {
	// Step orders events within a Plan; events sharing a step fire
	// together.
	Step int
	// Link is the index of the proxied link the event targets.
	Link int
	Kind Kind

	// Delay parameterizes Latency.
	Delay time.Duration
	// Count parameterizes DropConn and Truncate.
	Count int
	// Beat parameterizes Flap: odd = down, even = up.
	Beat int
}

func (e Event) String() string {
	switch e.Kind {
	case Latency:
		return fmt.Sprintf("step %d: link %d %s %s", e.Step, e.Link, e.Kind, e.Delay)
	case DropConn, Truncate:
		return fmt.Sprintf("step %d: link %d %s ×%d", e.Step, e.Link, e.Kind, e.Count)
	case Flap:
		return fmt.Sprintf("step %d: link %d %s beat %d", e.Step, e.Link, e.Kind, e.Beat)
	default:
		return fmt.Sprintf("step %d: link %d %s", e.Step, e.Link, e.Kind)
	}
}

// ErrUnknownLink is returned when an event names a link the injector
// does not have.
var ErrUnknownLink = errors.New("netfaults: unknown link")

// Proxy is an in-process TCP relay for one link. Create with
// NewProxy; point the client at Addr(). A healthy proxy is a
// transparent pipe; Set* methods switch on one fault at a time.
// All methods are safe for concurrent use.
type Proxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	closed  bool
	cut     bool // symmetric partition: reset existing, refuse new
	blackIn bool // swallow client→target bytes
	blackOut bool // swallow target→client bytes
	latency time.Duration
	dropN   int // connections to reset mid-body
	truncN  int // responses to truncate after the first chunk
	conns   map[net.Conn]struct{} // live client-side conns, for resets
}

// NewProxy starts a relay on 127.0.0.1 toward target ("host:port").
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; dial this instead of the
// target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget re-points the relay, e.g. after the backing daemon
// restarted on a new port. Existing connections keep their old
// target; new ones dial the new one.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

// SetPartition configures the link's partition state: sym resets and
// refuses everything; in/out blackhole one direction each (the other
// stays live — the asymmetric partitions real fabrics produce).
// All false heals the link.
func (p *Proxy) SetPartition(sym, in, out bool) {
	p.mu.Lock()
	p.cut = sym
	p.blackIn = in
	p.blackOut = out
	var toReset []net.Conn
	if sym {
		for c := range p.conns {
			toReset = append(toReset, c)
		}
	}
	p.mu.Unlock()
	for _, c := range toReset {
		c.Close()
	}
}

// SetLatency adds a fixed startup delay to each transfer direction of
// every new connection (0 restores nominal speed).
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// DropNextConns arms the proxy to reset the next n connections after
// relaying the first chunk of response — a mid-body cut.
func (p *Proxy) DropNextConns(n int) {
	p.mu.Lock()
	p.dropN += n
	p.mu.Unlock()
}

// TruncateNextResponses arms the proxy to close the next n
// connections cleanly after the first response chunk — a truncated
// body.
func (p *Proxy) TruncateNextResponses(n int) {
	p.mu.Lock()
	p.truncN += n
	p.mu.Unlock()
}

// Close stops the listener and resets every live connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	var conns []net.Conn
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

func (p *Proxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.cut {
			p.mu.Unlock()
			c.Close() // refused: the symmetric partition (or shutdown)
			continue
		}
		target := p.target
		latency := p.latency
		drop := p.dropN > 0
		if drop {
			p.dropN--
		}
		trunc := !drop && p.truncN > 0
		if trunc {
			p.truncN--
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		go p.relay(c, target, latency, drop, trunc)
	}
}

// relay pipes one connection through the fault machinery.
func (p *Proxy) relay(c net.Conn, target string, latency time.Duration, drop, trunc bool) {
	defer func() {
		c.Close()
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}()
	t, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		return
	}
	defer t.Close()

	done := make(chan struct{}, 2)
	// client → target (the "in" direction).
	go func() {
		p.pipe(t, c, latency, func() bool { return p.blackholed(true) }, 0, false)
		// Half-close toward the target so it sees EOF on the request
		// stream, like a real client hanging up.
		if tc, ok := t.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// target → client (the "out" direction) carries the mid-body fault
	// arming: drop resets mid-body, trunc closes cleanly mid-body.
	go func() {
		limit := 0
		if drop || trunc {
			// Let a sliver of the response through — enough to prove
			// bytes flowed, far short of any full HTTP response — then
			// act. The client sees a body cut mid-flight.
			limit = 20
		}
		p.pipe(c, t, latency, func() bool { return p.blackholed(false) }, limit, drop)
		done <- struct{}{}
	}()
	// One direction ending (EOF, reset, fault) tears the whole relay
	// down: close both sides so the other pipe unblocks.
	<-done
	c.Close()
	t.Close()
	<-done
}

// blackholed reports whether the given direction is currently
// swallowed. Checked per chunk, so flipping a partition mid-stream
// affects live connections, exactly like pooled keep-alive conns on a
// real link.
func (p *Proxy) blackholed(in bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if in {
		return p.blackIn
	}
	return p.blackOut
}

// pipe copies src→dst chunk by chunk. black() bytes are read and
// discarded (the sender never errors — its bytes just vanish).
// byteLimit > 0 stops the copy after that many relayed bytes; withRST
// arms an abortive close so the peer sees a reset rather than EOF.
func (p *Proxy) pipe(dst, src net.Conn, latency time.Duration, black func() bool, byteLimit int, withRST bool) {
	buf := make([]byte, 32<<10)
	relayed := 0
	if latency > 0 {
		time.Sleep(latency)
	}
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if black() {
				// Swallowed: the direction is partitioned. Keep reading so
				// the sender never blocks — its bytes just vanish.
				continue
			}
			if latency > 0 {
				time.Sleep(latency)
			}
			out := buf[:n]
			if byteLimit > 0 && relayed+n > byteLimit {
				out = buf[:byteLimit-relayed]
			}
			if len(out) > 0 {
				if _, werr := dst.Write(out); werr != nil {
					return
				}
				relayed += len(out)
			}
			if byteLimit > 0 && relayed >= byteLimit {
				if withRST {
					// An abortive close: SO_LINGER 0 turns Close into RST,
					// the honest signature of a connection dying mid-body.
					if tc, ok := dst.(*net.TCPConn); ok {
						tc.SetLinger(0)
					}
				}
				return
			}
		}
		if err != nil {
			// A blackholed direction swallows the connection's end too:
			// propagating the EOF would hand the peer a clean close, but a
			// partition hangs. Hold the pipe open until the link heals or
			// the proxy shuts down.
			for black() && !p.isClosed() {
				time.Sleep(5 * time.Millisecond)
			}
			return
		}
	}
}

func (p *Proxy) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Injector applies events to a set of proxied links, keeps a log, and
// tracks flap state. Apply is safe for concurrent use.
type Injector struct {
	proxies []*Proxy

	mu  sync.Mutex
	log []Event
}

// NewInjector creates an injector over the given links (index i of
// proxies is link i in events).
func NewInjector(proxies []*Proxy) *Injector {
	return &Injector{proxies: proxies}
}

// Apply injects one event into its link and logs it.
func (in *Injector) Apply(ev Event) error {
	if ev.Link < 0 || ev.Link >= len(in.proxies) {
		return fmt.Errorf("%w: %d", ErrUnknownLink, ev.Link)
	}
	p := in.proxies[ev.Link]
	switch ev.Kind {
	case PartitionSym:
		p.SetPartition(true, false, false)
	case PartitionIn:
		p.SetPartition(false, true, false)
	case PartitionOut:
		p.SetPartition(false, false, true)
	case Heal:
		p.SetPartition(false, false, false)
		p.SetLatency(0)
	case Latency:
		p.SetLatency(ev.Delay)
	case DropConn:
		p.DropNextConns(ev.Count)
	case Truncate:
		p.TruncateNextResponses(ev.Count)
	case Flap:
		if ev.Beat%2 == 1 {
			p.SetPartition(true, false, false)
		} else {
			p.SetPartition(false, false, false)
		}
	default:
		return fmt.Errorf("netfaults: unknown event kind %v", ev.Kind)
	}
	in.mu.Lock()
	in.log = append(in.log, ev)
	in.mu.Unlock()
	return nil
}

// Run applies a whole plan in order, stopping at the first error.
func (in *Injector) Run(p Plan) error {
	for _, ev := range p.Events {
		if err := in.Apply(ev); err != nil {
			return err
		}
	}
	return nil
}

// HealAll restores every link to nominal: no partition, no latency.
// Armed drop/truncate counts are not cleared (they drain on the next
// connections), matching faults.Injector.HealAll's transient
// semantics.
func (in *Injector) HealAll() {
	for i := range in.proxies {
		in.Apply(Event{Link: i, Kind: Heal})
	}
}

// Log returns a copy of all applied events in order.
func (in *Injector) Log() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.log))
	copy(out, in.log)
	return out
}
