package netfaults

import (
	"math/rand"
	"sort"
	"time"
)

// Plan is an ordered network-fault script. Build one programmatically,
// or let RandomPlan generate a reproducible scenario from a seed.
type Plan struct {
	Events []Event
}

// Steps returns the highest step number in the plan (-1 when empty).
func (p Plan) Steps() int {
	max := -1
	for _, ev := range p.Events {
		if ev.Step > max {
			max = ev.Step
		}
	}
	return max
}

// StepEvents returns the events of one step, in plan order.
func (p Plan) StepEvents(step int) []Event {
	var out []Event
	for _, ev := range p.Events {
		if ev.Step == step {
			out = append(out, ev)
		}
	}
	return out
}

// RandomOptions tunes RandomPlan.
type RandomOptions struct {
	// MaxConcurrentCut bounds how many links may be fully or partially
	// partitioned at once; RandomPlan additionally never cuts the last
	// clean link, so the router always has somewhere to place or
	// evacuate to. Default: half the links.
	MaxConcurrentCut int
	// MaxLatency bounds injected link latency (default 50ms).
	MaxLatency time.Duration
	// DropBurst is the connection count armed by DropConn/Truncate
	// events. Default 2.
	DropBurst int
	// FlapBeats is how many down/up beats a Flap burst emits (default
	// 4: down, up, down, up over four consecutive steps).
	FlapBeats int
}

// RandomPlan generates a deterministic network-chaos scenario: steps
// fault events over the given links, drawn from a seeded source.
// Every partition and latency fault it opens it eventually heals, and
// the final step heals everything, so a full run ends with a nominal
// fabric. At least one link stays clean at every point, and the same
// seed always yields the same schedule.
func RandomPlan(seed int64, steps int, linkCount int, opts RandomOptions) Plan {
	rng := rand.New(rand.NewSource(seed))
	links := make([]int, linkCount)
	for i := range links {
		links[i] = i
	}

	maxCut := opts.MaxConcurrentCut
	if maxCut <= 0 {
		maxCut = linkCount / 2
	}
	if maxCut >= linkCount {
		maxCut = linkCount - 1
	}
	maxLat := opts.MaxLatency
	if maxLat <= 0 {
		maxLat = 50 * time.Millisecond
	}
	burst := opts.DropBurst
	if burst <= 0 {
		burst = 2
	}
	beats := opts.FlapBeats
	if beats <= 0 {
		beats = 4
	}

	cut := map[int]Kind{} // link -> partition kind in effect
	slowed := map[int]bool{}
	var p Plan
	add := func(step int, ev Event) {
		ev.Step = step
		p.Events = append(p.Events, ev)
	}
	healCut := func(step, link int) {
		add(step, Event{Link: link, Kind: Heal})
		delete(cut, link)
		delete(slowed, link)
	}
	// oldestCut picks the longest-partitioned link deterministically
	// (smallest index among the cut set).
	oldestCut := func() int {
		victim := -1
		for l := range cut {
			if victim < 0 || l < victim {
				victim = l
			}
		}
		return victim
	}

	step := 0
	for step < steps {
		link := links[rng.Intn(len(links))]
		switch choice := rng.Intn(10); {
		case choice < 3: // partition / heal toggle
			if _, isCut := cut[link]; isCut {
				healCut(step, link)
			} else if len(cut) < maxCut {
				kind := []Kind{PartitionSym, PartitionIn, PartitionOut}[rng.Intn(3)]
				add(step, Event{Link: link, Kind: kind})
				cut[link] = kind
			} else {
				healCut(step, oldestCut())
			}
		case choice < 5: // latency inject / restore toggle
			if slowed[link] {
				add(step, Event{Link: link, Kind: Latency, Delay: 0})
				delete(slowed, link)
			} else {
				d := time.Duration(1+rng.Int63n(int64(maxLat/time.Millisecond))) * time.Millisecond
				add(step, Event{Link: link, Kind: Latency, Delay: d})
				slowed[link] = true
			}
		case choice < 7: // mid-body connection drops
			add(step, Event{Link: link, Kind: DropConn, Count: burst})
		case choice < 8: // truncated responses
			add(step, Event{Link: link, Kind: Truncate, Count: burst})
		default: // flap burst: the link bounces over consecutive steps
			if _, isCut := cut[link]; isCut || len(cut) >= maxCut {
				add(step, Event{Link: link, Kind: DropConn, Count: burst})
				break
			}
			for b := 1; b <= beats && step < steps; b++ {
				add(step, Event{Link: link, Kind: Flap, Beat: b})
				if b < beats {
					step++
				}
			}
			if beats%2 == 1 {
				// An odd burst ends down; book it as cut so the budget and
				// the final heal see it.
				cut[link] = PartitionSym
			}
		}
		step++
	}

	// Heal every open fault so the plan ends nominal.
	var open []int
	for l := range cut {
		open = append(open, l)
	}
	for l := range slowed {
		if _, dup := cut[l]; !dup {
			open = append(open, l)
		}
	}
	sort.Ints(open)
	for _, l := range open {
		add(steps, Event{Link: l, Kind: Heal})
	}
	return p
}
