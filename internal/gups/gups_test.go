package gups

import (
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

const gib = uint64(1) << 30

func TestRealVerifies(t *testing.T) {
	if err := Real(16, 200_000); err != nil {
		t.Fatal(err)
	}
	if err := Real(0, 10); err == nil {
		t.Fatal("degenerate size should fail")
	}
}

func TestSimLatencyBound(t *testing.T) {
	p, err := platform.Get("xeon")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	ini := bitmap.NewFromRange(0, 19)
	run := func(nodeOS int) Result {
		table, err := m.Alloc("gups-table", 8*gib, m.NodeByOS(nodeOS))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Free(table)
		e := memsim.NewEngine(m, ini)
		return Run(e, table, 500_000_000, SimParams{})
	}
	dram := run(0)
	nv := run(2)
	if dram.GUPS <= nv.GUPS {
		t.Fatalf("DRAM %.4f GUPS should beat NVDIMM %.4f", dram.GUPS, nv.GUPS)
	}
	// GUPS is far more placement-sensitive than STREAM-style ratios
	// suggest: the latency gap passes straight through.
	if ratio := dram.GUPS / nv.GUPS; ratio < 1.5 {
		t.Fatalf("GUPS ratio %.2f too small for a pure-latency workload", ratio)
	}
	// Plausible magnitude: a two-socket Xeon delivers fractions of a
	// GUPS.
	if dram.GUPS < 0.005 || dram.GUPS > 5 {
		t.Fatalf("GUPS %.4f implausible", dram.GUPS)
	}
}

func TestSimOnKNLHighMLP(t *testing.T) {
	// Unlike Graph500 (Table IIb), GUPS issues enough concurrent
	// misses (MLP 16) that its line fills saturate the cluster DDR4
	// bandwidth — MCDRAM wins by a large margin, as it does on real
	// KNL for RandomAccess.
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	ini := bitmap.NewFromRange(0, 15)
	run := func(nodeOS int) Result {
		table, err := m.Alloc("gups-table", 3*gib, m.NodeByOS(nodeOS))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Free(table)
		e := memsim.NewEngine(m, ini)
		return Run(e, table, 200_000_000, SimParams{})
	}
	dram := run(0)
	mc := run(4)
	ratio := dram.GUPS / mc.GUPS
	if ratio < 0.2 || ratio > 0.8 {
		t.Fatalf("KNL GUPS ratio %.2f: MCDRAM should win clearly under load", ratio)
	}
	// At pointer-chase concurrency (MLP 1) the load vanishes and the
	// two memories tie on idle latency, like Graph500.
	run1 := func(nodeOS int) Result {
		table, err := m.Alloc("gups-table", 3*gib, m.NodeByOS(nodeOS))
		if err != nil {
			t.Fatal(err)
		}
		defer m.Free(table)
		e := memsim.NewEngine(m, ini)
		return Run(e, table, 20_000_000, SimParams{MLP: 1})
	}
	d1, m1 := run1(0), run1(4)
	if r := d1.GUPS / m1.GUPS; r < 0.9 || r > 1.3 {
		t.Fatalf("chase-mode ratio %.2f should be near 1", r)
	}
}
