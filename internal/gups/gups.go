// Package gups implements the HPC Challenge RandomAccess benchmark
// (GUPS — giga-updates per second), a second latency-bound workload
// beyond Graph500: random read-modify-write updates over a huge table.
// The paper's Section III-B2 singles out exactly this class
// ("graph-based or Pointer Chasing-type applications benefit much more
// from low latency than from high bandwidth"); GUPS gives the test
// suite a pure-latency application with no streaming component at all.
//
// The real kernel runs and self-verifies at small scale (XOR updates
// are an involution: replaying the same update stream restores the
// table); the simulated run replays its access profile against placed
// buffers, like the other workloads.
package gups

import (
	"fmt"

	"hetmem/internal/memsim"
)

// Real runs the actual RandomAccess kernel over a 2^logSize table and
// verifies it by replaying the same update stream (which must restore
// the initial table). Returns an error on verification failure.
func Real(logSize uint, updates int) error {
	if logSize < 1 || logSize > 28 {
		return fmt.Errorf("gups: unreasonable table size 2^%d", logSize)
	}
	n := 1 << logSize
	table := make([]uint64, n)
	for i := range table {
		table[i] = uint64(i)
	}
	mask := uint64(n - 1)

	run := func() {
		ran := uint64(1)
		for i := 0; i < updates; i++ {
			ran = lcg(ran)
			table[ran&mask] ^= ran
		}
	}
	run() // scramble
	run() // unscramble: XOR with the same stream
	for i, v := range table {
		if v != uint64(i) {
			return fmt.Errorf("gups: verification failed at %d: %d", i, v)
		}
	}
	return nil
}

// lcg is the HPCC-style pseudo-random stream (a simple full-period
// generator suffices for our purposes).
func lcg(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }

// SimParams tunes the simulated run.
type SimParams struct {
	// MLP is the update stream's memory-level parallelism: RandomAccess
	// batches 128 independent updates, so parallelism is high. Default
	// 16.
	MLP float64
	// CPUPerUpdate is the per-thread instruction cost of one update.
	// Default 1.5 ns.
	CPUPerUpdate float64
}

func (p *SimParams) defaults() {
	if p.MLP == 0 {
		p.MLP = 16
	}
	if p.CPUPerUpdate == 0 {
		p.CPUPerUpdate = 1.5e-9
	}
}

// Result of a simulated run.
type Result struct {
	Seconds float64
	// GUPS is updates/1e9/seconds, the benchmark's metric.
	GUPS float64
}

// Run replays `updates` random read-modify-write operations over the
// table buffer.
func Run(e *memsim.Engine, table *memsim.Buffer, updates uint64, p SimParams) Result {
	p.defaults()
	// The read half of each update pays the miss latency; the 8-byte
	// write-backs drain asynchronously and are not modelled as a
	// synchronous stream.
	res := e.Phase("gups", []memsim.Access{{
		Buffer:      table,
		RandomReads: updates,
		MLP:         p.MLP,
		CPUSeconds:  p.CPUPerUpdate * float64(updates) / float64(e.Threads()),
	}})
	out := Result{Seconds: res.Seconds}
	if res.Seconds > 0 {
		out.GUPS = float64(updates) / 1e9 / res.Seconds
	}
	return out
}
