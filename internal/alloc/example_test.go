package alloc_test

import (
	"fmt"
	"log"

	"hetmem/internal/alloc"
	"hetmem/internal/bench"
	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/platform"
)

// The heterogeneous allocator end to end on KNL: benchmark discovery
// (no HMAT on this machine), then ranked fallback as the 4 GB MCDRAM
// fills — the paper's mem_alloc(..., attribute).
func Example() {
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		log.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	results, err := bench.MeasureAll(m, bench.Options{})
	if err != nil {
		log.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := bench.Apply(results, reg); err != nil {
		log.Fatal(err)
	}

	a := alloc.New(m, reg)
	cluster0 := bitmap.NewFromRange(0, 15)
	for _, name := range []string{"hot-a", "hot-b"} {
		buf, dec, err := a.Alloc(name, 3<<30, memattr.Bandwidth, cluster0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s -> %s (rank %d)\n", name, buf.NodeNames(), dec.RankPosition)
	}
	// Output:
	// hot-a -> MCDRAM#4 (rank 0)
	// hot-b -> DRAM#0 (rank 1)
}

// Priority planning beats first-come-first-served when a critical
// buffer arrives late (paper Section VII).
func Example_priority() {
	p, _ := platform.Get("knl-snc4-flat")
	m, _ := p.NewMachine()
	results, _ := bench.MeasureAll(m, bench.Options{})
	reg := memattr.NewRegistry(p.Topo)
	if err := bench.Apply(results, reg); err != nil {
		log.Fatal(err)
	}
	a := alloc.New(m, reg)
	cluster0 := bitmap.NewFromRange(0, 15)

	reqs := []alloc.Request{
		{Name: "scratch", Size: 3 << 30, Attr: memattr.Bandwidth, Priority: 1},
		{Name: "critical", Size: 3 << 30, Attr: memattr.Bandwidth, Priority: 10},
	}
	for _, pl := range a.PlanPriority(reqs, cluster0) {
		fmt.Printf("%s -> %s\n", pl.Request.Name, pl.Buffer.NodeNames())
	}
	// Output:
	// scratch -> DRAM#0
	// critical -> MCDRAM#4
}
