package alloc

// The ranked-candidate cache: the daemon hot-path optimisation that
// turns the per-allocation re-rank of Candidates into a map lookup.
//
// Ranking a placement depends only on (attribute, initiator, remote)
// and on the machine's placement inputs — attribute values, node
// health, injected capacity/performance faults — none of which change
// per allocation. Related work (HMPT's one-time characterization,
// Olson et al.'s amortized guidance) computes placement intent once and
// reuses it until the machine changes; this cache does the same with a
// generation counter as the change signal: memsim bumps it on any
// fault-state change, and the server bumps the allocator's own counter
// on health transitions (InvalidateCandidates). A stale generation
// invalidates every entry at once.
//
// Capacity USE is deliberately not a generation input: rankings order
// targets by attribute value, and a full target is discovered by the
// capacity check when the allocation is attempted — a cache hit is a
// map lookup plus that capacity check, exactly as fast as the machine
// allows.

import (
	"sync"
	"sync/atomic"

	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
)

// candKey identifies one memoized ranking: attribute, an FNV hash of
// the initiator cpuset, and the remote option. Hash collisions are
// resolved by comparing the stored initiator with bitmap.Equal — a
// collision degrades to a miss, never to a wrong ranking.
type candKey struct {
	attr   memattr.ID
	ini    uint64
	remote bool
}

// candEntry is one cached ranking with the generation it was computed
// under and the exact initiator it is valid for.
type candEntry struct {
	gen    uint64
	ini    *bitmap.Bitmap
	ranked []memattr.TargetValue
	used   memattr.ID
	fell   bool
}

// candCache memoizes Candidates results until the generation moves.
type candCache struct {
	mu sync.RWMutex
	m  map[candKey]*candEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newCandCache() *candCache {
	return &candCache{m: make(map[candKey]*candEntry)}
}

// lookup returns the entry for key if it was computed under gen for an
// initiator equal to ini.
func (c *candCache) lookup(key candKey, gen uint64, ini *bitmap.Bitmap) (*candEntry, bool) {
	c.mu.RLock()
	e, ok := c.m[key]
	c.mu.RUnlock()
	if !ok || e.gen != gen || !bitmap.Equal(e.ini, ini) {
		return nil, false
	}
	return e, true
}

// store publishes a freshly computed ranking. A racing store for the
// same key under a newer generation wins: entries are replaced, never
// mutated.
func (c *candCache) store(key candKey, e *candEntry) {
	c.mu.Lock()
	old, ok := c.m[key]
	if !ok || old.gen <= e.gen {
		c.m[key] = e
	}
	c.mu.Unlock()
}

// cacheGen is the allocator's effective generation: the machine's
// placement generation plus the allocator's own invalidation counter
// (bumped by InvalidateCandidates for changes memsim cannot see, like
// server-side health transitions or live registry edits).
func (a *Allocator) cacheGen() uint64 {
	return a.m.Generation() + a.localGen.Load()
}

// InvalidateCandidates drops every cached ranking. The placement daemon
// calls it on node health transitions; call it after mutating the
// attribute registry under a live allocator.
func (a *Allocator) InvalidateCandidates() { a.localGen.Add(1) }

// CacheStats returns how many Candidates calls were served from the
// ranked-candidate cache and how many had to re-rank.
func (a *Allocator) CacheStats() (hits, misses uint64) {
	if a.cache == nil {
		return 0, 0
	}
	return a.cache.hits.Load(), a.cache.misses.Load()
}

// DisableCandidateCache makes every Candidates call re-rank (the
// pre-cache behaviour). For A/B benchmarking; not safe to toggle
// concurrently with allocation.
func (a *Allocator) DisableCandidateCache() { a.cache = nil }
