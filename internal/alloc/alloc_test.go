package alloc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hetmem/internal/bench"
	"hetmem/internal/bitmap"
	"hetmem/internal/hmat"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
)

const gib = uint64(1) << 30

// knlAlloc builds a KNL machine with benchmark-discovered attributes
// (KNL has no HMAT).
func knlAlloc(t *testing.T) (*Allocator, *bitmap.Bitmap) {
	t.Helper()
	p, err := platform.Get("knl-snc4-flat")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	results, err := bench.MeasureAll(m, bench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := bench.Apply(results, reg); err != nil {
		t.Fatal(err)
	}
	// Cluster 0's cores.
	return New(m, reg), bitmap.NewFromRange(0, 15)
}

// xeonAlloc builds the Xeon use-case machine with HMAT-discovered
// attributes.
func xeonAlloc(t *testing.T) (*Allocator, *bitmap.Bitmap) {
	t.Helper()
	p, err := platform.Get("xeon")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	reg := memattr.NewRegistry(p.Topo)
	if err := hmat.Apply(p.HMATTable(), reg); err != nil {
		t.Fatal(err)
	}
	return New(m, reg), bitmap.NewFromRange(0, 19)
}

func TestPortabilityOfAttributeRequests(t *testing.T) {
	// The same three requests adapt to each machine — the paper's
	// central claim.
	knl, kini := knlAlloc(t)
	xeon, xini := xeonAlloc(t)

	cases := []struct {
		a        *Allocator
		ini      *bitmap.Bitmap
		attr     memattr.ID
		wantKind string
	}{
		{knl, kini, memattr.Bandwidth, "MCDRAM"},
		{knl, kini, memattr.Latency, "DRAM"}, // KNL DDR4 idle latency is marginally better than MCDRAM's
		{knl, kini, memattr.Capacity, "DRAM"},
		{xeon, xini, memattr.Bandwidth, "DRAM"}, // no HBM on Xeon: DRAM wins bandwidth
		{xeon, xini, memattr.Latency, "DRAM"},
		{xeon, xini, memattr.Capacity, "NVDIMM"},
	}
	for _, c := range cases {
		buf, dec, err := c.a.Alloc("b", gib, c.attr, c.ini)
		if err != nil {
			t.Fatalf("Alloc(%v): %v", c.attr, err)
		}
		if dec.Target.Subtype != c.wantKind {
			t.Errorf("attr %s: placed on %s, want %s", c.a.Registry().Name(c.attr), dec.Target.Subtype, c.wantKind)
		}
		if dec.RankPosition != 0 || dec.Partial || dec.Remote {
			t.Errorf("attr %v: unexpected decision %v", c.attr, dec)
		}
		c.a.Machine().Free(buf)
	}
}

func TestRankedFallbackWhenFull(t *testing.T) {
	a, ini := knlAlloc(t)
	// MCDRAM (4GB) holds the first buffer; the second spills to DRAM.
	b1, dec1, err := a.Alloc("hot1", 3*gib, memattr.Bandwidth, ini)
	if err != nil || dec1.Target.Subtype != "MCDRAM" {
		t.Fatalf("first: %v %v", dec1, err)
	}
	b2, dec2, err := a.Alloc("hot2", 3*gib, memattr.Bandwidth, ini)
	if err != nil {
		t.Fatal(err)
	}
	if dec2.Target.Subtype != "DRAM" || dec2.RankPosition != 1 {
		t.Fatalf("second: %v", dec2)
	}
	a.Machine().Free(b1)
	a.Machine().Free(b2)
}

func TestBindPolicyFails(t *testing.T) {
	a, ini := knlAlloc(t)
	if _, _, err := a.Alloc("big", 5*gib, memattr.Bandwidth, ini, WithPolicy(Bind)); !errors.Is(err, ErrExhausted) {
		t.Fatalf("bind to full MCDRAM err = %v", err)
	}
	// Preferred succeeds for the same request.
	buf, dec, err := a.Alloc("big", 5*gib, memattr.Bandwidth, ini)
	if err != nil || dec.Target.Subtype != "DRAM" {
		t.Fatalf("preferred: %v %v", dec, err)
	}
	a.Machine().Free(buf)
}

func TestPartialAllocation(t *testing.T) {
	a, ini := knlAlloc(t)
	// 26 GiB exceeds both the 4 GiB MCDRAM and what either node can
	// hold alone? DRAM is 24GiB, so 26 GiB needs a split.
	buf, dec, err := a.Alloc("huge", 26*gib, memattr.Bandwidth, ini, WithPartial())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Partial {
		t.Fatalf("decision = %v, want partial", dec)
	}
	if len(buf.Segments) != 2 {
		t.Fatalf("segments = %d", len(buf.Segments))
	}
	// Ranking order: MCDRAM first (bandwidth), then DRAM.
	if buf.Segments[0].Node.Kind() != "MCDRAM" || buf.Segments[0].Bytes != 4*gib {
		t.Fatalf("segment 0 = %+v", buf.Segments[0])
	}
	if buf.Segments[1].Node.Kind() != "DRAM" || buf.Segments[1].Bytes != 22*gib {
		t.Fatalf("segment 1 = %+v", buf.Segments[1])
	}
	a.Machine().Free(buf)

	// Without WithPartial the same request is exhausted.
	if _, _, err := a.Alloc("huge", 26*gib, memattr.Bandwidth, ini); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteFallback(t *testing.T) {
	a, ini := knlAlloc(t)
	m := a.Machine()
	// Benchmarked attributes only cover local pairs; remote candidates
	// need remote measurements, taken while nodes still have room.
	results, err := bench.MeasureAll(m, bench.Options{IncludeRemote: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := bench.Apply(results, a.Registry()); err != nil {
		t.Fatal(err)
	}
	// Fill cluster 0 entirely.
	if _, _, err := a.Alloc("fill-mc", 4*gib, memattr.Bandwidth, ini); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Alloc("fill-dram", 24*gib, memattr.Capacity, ini); err != nil {
		t.Fatal(err)
	}
	// Local-only fails now.
	if _, _, err := a.Alloc("b", gib, memattr.Bandwidth, ini); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	buf, dec, err := a.Alloc("b", gib, memattr.Bandwidth, ini, WithRemote())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Remote {
		t.Fatalf("decision = %v, want remote", dec)
	}
	if bitmap.Intersects(dec.Target.CPUSet, ini) {
		t.Fatal("target should be non-local")
	}
	a.Machine().Free(buf)
}

func TestAttributeFallback(t *testing.T) {
	a, ini := xeonAlloc(t)
	// The Xeon HMAT exposes only access bandwidth/latency; requesting
	// ReadBandwidth falls back to Bandwidth.
	buf, dec, err := a.Alloc("b", gib, memattr.ReadBandwidth, ini)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.AttrFellBack || dec.Used != memattr.Bandwidth {
		t.Fatalf("decision = %+v", dec)
	}
	a.Machine().Free(buf)
}

func TestAllocUnknownAttr(t *testing.T) {
	a, ini := xeonAlloc(t)
	if _, _, err := a.Alloc("b", gib, memattr.ID(999), ini); !errors.Is(err, memattr.ErrUnknownAttr) {
		t.Fatalf("err = %v", err)
	}
}

func TestLinuxPreferredAllowed(t *testing.T) {
	a, _ := knlAlloc(t)
	m := a.Machine()
	dram := m.NodeByOS(0)
	mcdram := m.NodeByOS(4)
	// Preferring MCDRAM with DRAM fallback is impossible on Linux
	// (MCDRAM has the higher index) — the paper's footnote.
	if LinuxPreferredAllowed(mcdram, []*memsim.Node{dram}) {
		t.Fatal("Linux should not allow MCDRAM-preferred with DRAM fallback")
	}
	if !LinuxPreferredAllowed(dram, []*memsim.Node{mcdram}) {
		t.Fatal("DRAM-preferred with MCDRAM fallback should be allowed")
	}
}

func TestMigrateToBest(t *testing.T) {
	a, ini := knlAlloc(t)
	m := a.Machine()
	// Land a buffer on DRAM by capacity, then migrate it to the
	// bandwidth-best target between phases.
	buf, dec, err := a.Alloc("phase-buf", 2*gib, memattr.Capacity, ini)
	if err != nil || dec.Target.Subtype != "DRAM" {
		t.Fatalf("alloc: %v %v", dec, err)
	}
	cost, mdec, err := a.MigrateToBest(buf, memattr.Bandwidth, ini)
	if err != nil {
		t.Fatal(err)
	}
	if mdec.Target.Subtype != "MCDRAM" || cost <= 0 {
		t.Fatalf("migrate: %v cost=%f", mdec, cost)
	}
	if buf.NodeNames() != "MCDRAM#4" {
		t.Fatalf("placement = %s", buf.NodeNames())
	}
	// Already on the best target: no cost.
	cost, _, err = a.MigrateToBest(buf, memattr.Bandwidth, ini)
	if err != nil || cost != 0 {
		t.Fatalf("re-migrate: cost=%f err=%v", cost, err)
	}
	// A buffer already resident on a candidate target is never
	// "exhausted": migrating a DRAM-resident buffer that fits nowhere
	// better stays put at zero cost.
	big, _, err := a.Alloc("big", 20*gib, memattr.Capacity, ini)
	if err != nil {
		t.Fatal(err)
	}
	cost, mdec, err = a.MigrateToBest(big, memattr.Bandwidth, ini)
	if err != nil || cost != 0 || mdec.Target.Subtype != "DRAM" {
		t.Fatalf("stay-put migrate: %v cost=%f err=%v", mdec, cost, err)
	}
	// Exhaustion: a buffer stranded on a *remote* node with every
	// local candidate full cannot be migrated locally.
	stranded, err := m.Alloc("stranded", 8*gib, m.NodeByOS(1)) // cluster 1 DRAM
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Alloc("fill-mc", 2*gib, memattr.Bandwidth, ini); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Alloc("fill-dram", 2*gib, memattr.Capacity, ini); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.MigrateToBest(stranded, memattr.Bandwidth, ini); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestFCFSVersusPriority(t *testing.T) {
	// Section VII: a late critical buffer loses the MCDRAM under FCFS
	// but wins it under priority planning.
	reqs := []Request{
		{Name: "scratch", Size: 3 * gib, Attr: memattr.Bandwidth, Priority: 1},
		{Name: "critical", Size: 3 * gib, Attr: memattr.Bandwidth, Priority: 10},
	}

	a1, ini := knlAlloc(t)
	fcfs := a1.PlanFCFS(reqs, ini)
	if fcfs[0].Err != nil || fcfs[1].Err != nil {
		t.Fatalf("fcfs errors: %v %v", fcfs[0].Err, fcfs[1].Err)
	}
	if fcfs[0].Dec.Target.Subtype != "MCDRAM" || fcfs[1].Dec.Target.Subtype != "DRAM" {
		t.Fatalf("fcfs placement: %s %s", fcfs[0].Dec.Target.Subtype, fcfs[1].Dec.Target.Subtype)
	}

	a2, ini2 := knlAlloc(t)
	prio := a2.PlanPriority(reqs, ini2)
	if prio[1].Dec.Target.Subtype != "MCDRAM" || prio[0].Dec.Target.Subtype != "DRAM" {
		t.Fatalf("priority placement: %s %s", prio[0].Dec.Target.Subtype, prio[1].Dec.Target.Subtype)
	}
	// Results stay in request order regardless of allocation order.
	if prio[0].Request.Name != "scratch" || prio[1].Request.Name != "critical" {
		t.Fatal("priority results out of request order")
	}
}

func TestCandidatesOrdering(t *testing.T) {
	a, ini := knlAlloc(t)
	ranked, used, fell, err := a.Candidates(memattr.Bandwidth, ini, false)
	if err != nil || fell || used != memattr.Bandwidth {
		t.Fatalf("candidates: used=%v fell=%v err=%v", used, fell, err)
	}
	if len(ranked) != 2 {
		t.Fatalf("local candidates = %d", len(ranked))
	}
	if ranked[0].Target.Subtype != "MCDRAM" || ranked[1].Target.Subtype != "DRAM" {
		t.Fatalf("order: %s %s", ranked[0].Target.Subtype, ranked[1].Target.Subtype)
	}
	if ranked[0].Value <= ranked[1].Value {
		t.Fatal("bandwidth ranking not decreasing")
	}
}

// TestQuickRandomRequestSequences drives the allocator with random
// request streams and checks the global invariants: capacity never
// exceeded, every success lands on a candidate with room, every
// failure is ErrExhausted, and freeing restores accounting exactly.
func TestQuickRandomRequestSequences(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a, ini := knlAlloc(t)
		m := a.Machine()
		attrs := []memattr.ID{memattr.Bandwidth, memattr.Latency, memattr.Capacity}
		var live []*memsim.Buffer
		for i := 0; i < 60; i++ {
			if len(live) > 0 && rnd.Intn(3) == 0 {
				j := rnd.Intn(len(live))
				if err := m.Free(live[j]); err != nil {
					return false
				}
				live = append(live[:j], live[j+1:]...)
				continue
			}
			size := uint64(rnd.Intn(4)+1) << 30
			buf, dec, err := a.Alloc("b", size, attrs[rnd.Intn(len(attrs))], ini)
			if err != nil {
				if !errors.Is(err, ErrExhausted) {
					return false
				}
				continue
			}
			if dec.Target == nil || buf.Size != size {
				return false
			}
			live = append(live, buf)
			for _, n := range m.Nodes() {
				if n.Allocated() > n.Capacity() {
					return false
				}
			}
		}
		for _, b := range live {
			if err := m.Free(b); err != nil {
				return false
			}
		}
		for _, n := range m.Nodes() {
			if n.Allocated() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecisionHonorsRanking: whenever the allocator picks rank k,
// every better-ranked candidate genuinely lacked room at that moment.
func TestQuickDecisionHonorsRanking(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a, ini := knlAlloc(t)
		m := a.Machine()
		for i := 0; i < 30; i++ {
			size := uint64(rnd.Intn(3)+1) << 30
			ranked, _, _, err := a.Candidates(memattr.Bandwidth, ini, false)
			if err != nil {
				return false
			}
			avail := make([]uint64, len(ranked))
			for j, tv := range ranked {
				avail[j] = m.Node(tv.Target).Available()
			}
			_, dec, err := a.Alloc("b", size, memattr.Bandwidth, ini)
			if err != nil {
				if !errors.Is(err, ErrExhausted) {
					return false
				}
				for _, room := range avail {
					if room >= size {
						return false // a candidate had room but we failed
					}
				}
				continue
			}
			for j := 0; j < dec.RankPosition; j++ {
				if avail[j] >= size {
					return false // skipped a better candidate with room
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
