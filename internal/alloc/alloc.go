// Package alloc implements the paper's heterogeneous memory allocator
// (Section IV-B): a single call — Alloc(name, size, attribute) — that
// places a buffer on the best *local* memory target for the requested
// performance attribute, with ranked fallback when the best target is
// full, attribute fallback when the platform lacks the requested
// metric (Bandwidth instead of ReadBandwidth), and optional hybrid
// (partial) and remote placements.
//
// The key portability property, demonstrated by the use case: the
// application states what matters for a buffer (Bandwidth, Latency,
// Capacity, or a custom metric), never which technology to use. The
// same request picks MCDRAM on KNL, DRAM on a Xeon without HBM, and
// adapts to however many nodes the machine has — unlike memkind-style
// APIs that hardwire HBW/DRAM kinds (see internal/memkind for that
// baseline).
package alloc

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

// Policy selects the fallback behaviour of an allocation.
type Policy int

const (
	// Preferred allocates on the best target if possible and walks
	// down the attribute ranking otherwise (the allocator's default,
	// unlike Linux's restricted preferred policy — see
	// LinuxPreferredAllowed).
	Preferred Policy = iota
	// Bind allocates on the best target or fails.
	Bind
)

// Errors returned by the allocator.
var (
	// ErrExhausted means no candidate target could hold the buffer.
	ErrExhausted = errors.New("alloc: all candidate targets exhausted")
)

// Decision records how an allocation was placed, for logging and for
// the experiments.
type Decision struct {
	// Requested and Used are the requested attribute and the one
	// actually used after attribute fallback.
	Requested, Used memattr.ID
	AttrFellBack    bool

	// Target is the node of the first (or only) segment.
	Target *topology.Object
	// RankPosition is the index of the chosen target in the ranking
	// (0 = the best target was available).
	RankPosition int
	// Partial is true when the buffer was split across targets.
	Partial bool
	// Remote is true when a non-local target had to be used.
	Remote bool
}

func (d Decision) String() string {
	s := fmt.Sprintf("target=%s rank=%d", d.Target, d.RankPosition)
	if d.AttrFellBack {
		s += " (attribute fallback)"
	}
	if d.Partial {
		s += " (partial)"
	}
	if d.Remote {
		s += " (remote)"
	}
	return s
}

// Spec is the struct form of an Option list. Hot callers (the
// placement daemon's request path) fill one Spec and call AllocSpec or
// MigrateToBestSpec directly, paying no per-request closure or option
// slice allocations; the Option API remains as sugar over it.
type Spec struct {
	// Policy is the fallback policy (Preferred by default).
	Policy Policy
	// Partial allows splitting the buffer across several targets in
	// ranking order when no single one fits.
	Partial bool
	// Remote extends the candidate set to non-local nodes.
	Remote bool
	// Avoid deprioritizes targets for which it returns true.
	Avoid func(*topology.Object) bool
}

// Option configures one allocation.
type Option func(*Spec)

// specOf folds an option list into a Spec.
func specOf(opts []Option) Spec {
	var sp Spec
	for _, o := range opts {
		o(&sp)
	}
	return sp
}

// WithPolicy sets the fallback policy.
func WithPolicy(p Policy) Option { return func(s *Spec) { s.Policy = p } }

// WithPartial allows splitting the buffer across several targets in
// ranking order when no single one fits (the hybrid allocations of
// Section VII).
func WithPartial() Option { return func(s *Spec) { s.Partial = true } }

// WithRemote extends the candidate set to non-local nodes (ranked
// after local ones) when local targets are exhausted.
func WithRemote() Option { return func(s *Spec) { s.Remote = true } }

// WithAvoid deprioritizes targets for which pred returns true: they
// move to the end of the ranking (in their original relative order)
// instead of being excluded, so a degraded tier is still a last resort
// when everything healthy is full. The placement daemon uses this to
// steer traffic away from unhealthy nodes.
func WithAvoid(pred func(*topology.Object) bool) Option {
	return func(s *Spec) { s.Avoid = pred }
}

// demote stable-partitions ranked targets: preferred first, avoided
// last. When nothing is avoided — the steady state of a healthy
// machine — the input slice is returned as-is, allocation-free.
func demote(ranked []memattr.TargetValue, avoid func(*topology.Object) bool) []memattr.TargetValue {
	if avoid == nil {
		return ranked
	}
	first := -1
	for i, tv := range ranked {
		if avoid(tv.Target) {
			first = i
			break
		}
	}
	if first == -1 {
		return ranked
	}
	out := make([]memattr.TargetValue, 0, len(ranked))
	var tail []memattr.TargetValue
	for _, tv := range ranked {
		if avoid(tv.Target) {
			tail = append(tail, tv)
		} else {
			out = append(out, tv)
		}
	}
	return append(out, tail...)
}

// skippable reports whether an allocation error should make the
// allocator fall down the ranking (full or offline target) rather than
// fail the request (transient faults, programming errors).
func skippable(err error) bool {
	return errors.Is(err, memsim.ErrNoCapacity) || errors.Is(err, memsim.ErrNodeOffline)
}

// Allocator binds a simulated machine to an attribute registry.
//
// An Allocator is safe for concurrent use by multiple goroutines once
// discovery has populated the registry: Alloc, MigrateToBest, and the
// planners only read the registry and rely on the machine's per-node
// atomic capacity accounting. Capacity checks are races-by-design —
// when two goroutines contend for the last bytes of a target, the
// loser transparently falls down the ranking exactly as if the target
// had been full, and the hybrid (partial) path retries its plan a few
// times before giving up. Mutating the registry (SetValue, Register)
// concurrently with allocation is not supported.
type Allocator struct {
	m   *memsim.Machine
	reg *memattr.Registry

	// cache memoizes Candidates rankings (see cache.go); localGen is
	// the allocator's own invalidation counter, added to the machine's
	// placement generation.
	cache    *candCache
	localGen atomic.Uint64
}

// New creates an allocator. The ranked-candidate cache is on by
// default; see DisableCandidateCache and InvalidateCandidates.
func New(m *memsim.Machine, reg *memattr.Registry) *Allocator {
	return &Allocator{m: m, reg: reg, cache: newCandCache()}
}

// Machine returns the underlying machine.
func (a *Allocator) Machine() *memsim.Machine { return a.m }

// Registry returns the attribute registry.
func (a *Allocator) Registry() *memattr.Registry { return a.reg }

// Candidates returns the ranked candidate nodes for an allocation from
// the initiator optimizing attr: local nodes in attribute order,
// followed — when remote is set — by the remaining nodes in attribute
// order. It also reports the attribute actually used after fallback.
//
// Results are memoized per (attribute, initiator, remote) until the
// machine's placement generation moves, so the returned slice may be
// shared with the cache and other callers: treat it as read-only.
func (a *Allocator) Candidates(attr memattr.ID, initiator *bitmap.Bitmap, remote bool) ([]memattr.TargetValue, memattr.ID, bool, error) {
	cache := a.cache
	if initiator == nil {
		cache = nil // nothing to key on; rank uncached
	}
	var key candKey
	var gen uint64
	if cache != nil {
		gen = a.cacheGen()
		key = candKey{attr: attr, ini: initiator.Hash(), remote: remote}
		if e, ok := cache.lookup(key, gen, initiator); ok {
			cache.hits.Add(1)
			return e.ranked, e.used, e.fell, nil
		}
		cache.misses.Add(1)
	}
	ranked, used, fell, err := a.rankCandidates(attr, initiator, remote)
	if err != nil {
		return nil, 0, false, err
	}
	if cache != nil {
		cache.store(key, &candEntry{
			gen: gen, ini: initiator.Copy(), ranked: ranked, used: used, fell: fell,
		})
	}
	return ranked, used, fell, nil
}

// rankCandidates is the uncached ranking Candidates memoizes.
func (a *Allocator) rankCandidates(attr memattr.ID, initiator *bitmap.Bitmap, remote bool) ([]memattr.TargetValue, memattr.ID, bool, error) {
	used, fell, err := a.reg.ResolveWithFallback(attr)
	if err != nil {
		return nil, 0, false, err
	}
	topo := a.reg.Topology()
	local, err := a.reg.RankTargets(used, initiator, topo.LocalNUMANodes(initiator))
	if err != nil {
		return nil, 0, false, err
	}
	out := local
	if remote {
		inLocal := make(map[*topology.Object]bool, len(local))
		for _, tv := range local {
			inLocal[tv.Target] = true
		}
		all, err := a.reg.RankTargets(used, initiator, topo.NUMANodes())
		if err != nil {
			return nil, 0, false, err
		}
		for _, tv := range all {
			if !inLocal[tv.Target] {
				out = append(out, tv)
			}
		}
	}
	return out, used, fell, nil
}

// Alloc places size bytes according to the requested attribute, as
// seen from the initiator. This is the paper's mem_alloc(...,
// attribute).
func (a *Allocator) Alloc(name string, size uint64, attr memattr.ID, initiator *bitmap.Bitmap, opts ...Option) (*memsim.Buffer, Decision, error) {
	return a.AllocSpec(name, size, attr, initiator, specOf(opts))
}

// AllocSpec is Alloc with the options as a plain struct — the
// allocation-free form the daemon's hot path uses.
func (a *Allocator) AllocSpec(name string, size uint64, attr memattr.ID, initiator *bitmap.Bitmap, c Spec) (*memsim.Buffer, Decision, error) {
	ranked, used, fell, err := a.Candidates(attr, initiator, c.Remote)
	if err != nil {
		return nil, Decision{}, err
	}
	if len(ranked) == 0 {
		return nil, Decision{}, fmt.Errorf("%w: no candidate has attribute %s", ErrExhausted, a.reg.Name(used))
	}
	ranked = demote(ranked, c.Avoid)
	dec := Decision{Requested: attr, Used: used, AttrFellBack: fell}
	isRemote := func(t *topology.Object) bool {
		return !bitmap.Intersects(t.CPUSet, initiator)
	}

	limit := len(ranked)
	if c.Policy == Bind {
		limit = 1
	}
	for i := 0; i < limit; i++ {
		t := ranked[i].Target
		buf, err := a.m.Alloc(name, size, a.m.Node(t))
		if err == nil {
			dec.Target = t
			dec.RankPosition = i
			dec.Remote = isRemote(t)
			return buf, dec, nil
		}
		if !skippable(err) {
			return nil, Decision{}, err
		}
	}

	if c.Partial && c.Policy != Bind {
		// Hybrid allocation: fill targets in ranking order. The plan is
		// built from a snapshot of per-node availability, so under
		// concurrent allocation AllocSplit can lose the race; re-plan a
		// few times before declaring exhaustion.
		for attempt := 0; attempt < 4; attempt++ {
			var parts []memsim.Segment
			remaining := size
			for _, tv := range ranked {
				n := a.m.Node(tv.Target)
				take := n.Available()
				if take == 0 {
					continue
				}
				if take > remaining {
					take = remaining
				}
				parts = append(parts, memsim.Segment{Node: n, Bytes: take})
				remaining -= take
				if remaining == 0 {
					break
				}
			}
			if remaining != 0 {
				break
			}
			buf, err := a.m.AllocSplit(name, parts)
			if skippable(err) {
				continue
			}
			if err != nil {
				return nil, Decision{}, err
			}
			dec.Target = parts[0].Node.Obj
			dec.Partial = true
			dec.Remote = isRemote(parts[0].Node.Obj)
			return buf, dec, nil
		}
	}
	return nil, Decision{}, fmt.Errorf("%w: %d bytes requested for %q", ErrExhausted, size, name)
}

// MigrateToBest moves an existing buffer to the best target for attr
// that can hold it, returning the simulated migration cost in seconds
// (0 if the buffer is already on the best feasible target). The
// paper's Section VII recommends this only across application phases,
// because the OS cost is high.
func (a *Allocator) MigrateToBest(buf *memsim.Buffer, attr memattr.ID, initiator *bitmap.Bitmap, opts ...Option) (float64, Decision, error) {
	return a.MigrateToBestSpec(buf, attr, initiator, specOf(opts))
}

// MigrateToBestSpec is MigrateToBest with the options as a plain
// struct.
func (a *Allocator) MigrateToBestSpec(buf *memsim.Buffer, attr memattr.ID, initiator *bitmap.Bitmap, c Spec) (float64, Decision, error) {
	ranked, used, fell, err := a.Candidates(attr, initiator, c.Remote)
	if err != nil {
		return 0, Decision{}, err
	}
	ranked = demote(ranked, c.Avoid)
	dec := Decision{Requested: attr, Used: used, AttrFellBack: fell}
	for i, tv := range ranked {
		n := a.m.Node(tv.Target)
		segs := buf.SegmentsSnapshot()
		already := len(segs) == 1 && segs[0].Node == n
		if !already && n.Available() < buf.Size {
			continue
		}
		dec.Target = tv.Target
		dec.RankPosition = i
		dec.Remote = !bitmap.Intersects(tv.Target.CPUSet, initiator)
		if already {
			return 0, dec, nil
		}
		cost, err := a.m.Migrate(buf, n)
		if skippable(err) {
			// Lost a capacity race or the node just went down; try the
			// next candidate.
			continue
		}
		return cost, dec, err
	}
	return 0, Decision{}, fmt.Errorf("%w: migrating %q", ErrExhausted, buf.Name)
}

// LinuxPreferredAllowed reports whether Linux's preferred memory
// policy could express "allocate on preferred, else on any fallback":
// per the paper's footnote, the preferred node must have a lower OS
// index than the fallback nodes. On KNL the MCDRAM always has higher
// indexes than the DRAM, so preferring MCDRAM with DRAM fallback is
// exactly the case Linux cannot express — and our allocator can.
func LinuxPreferredAllowed(preferred *memsim.Node, fallbacks []*memsim.Node) bool {
	for _, f := range fallbacks {
		if preferred.OSIndex() > f.OSIndex() {
			return false
		}
	}
	return true
}

// Request is one buffer of a capacity-planning problem (Section VII).
type Request struct {
	Name string
	Size uint64
	Attr memattr.ID
	// Priority orders the priority planner: higher allocates first.
	Priority int
}

// Placement pairs a request with its outcome.
type Placement struct {
	Request Request
	Buffer  *memsim.Buffer
	Dec     Decision
	Err     error
}

// PlanFCFS allocates the requests in the order given (first come,
// first served) — late performance-critical buffers may find fast
// memory already full.
func (a *Allocator) PlanFCFS(reqs []Request, initiator *bitmap.Bitmap, opts ...Option) []Placement {
	out := make([]Placement, 0, len(reqs))
	for _, r := range reqs {
		buf, dec, err := a.Alloc(r.Name, r.Size, r.Attr, initiator, opts...)
		out = append(out, Placement{Request: r, Buffer: buf, Dec: dec, Err: err})
	}
	return out
}

// PlanPriority allocates in descending priority (stable for equal
// priorities), implementing the paper's recommendation that capacity
// conflicts be managed by priorities rather than allocation order.
func (a *Allocator) PlanPriority(reqs []Request, initiator *bitmap.Bitmap, opts ...Option) []Placement {
	idx := make([]int, len(reqs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return reqs[idx[x]].Priority > reqs[idx[y]].Priority
	})
	out := make([]Placement, len(reqs))
	for _, i := range idx {
		r := reqs[i]
		buf, dec, err := a.Alloc(r.Name, r.Size, r.Attr, initiator, opts...)
		out[i] = Placement{Request: r, Buffer: buf, Dec: dec, Err: err}
	}
	return out
}
