package alloc

import (
	"errors"
	"testing"

	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/topology"
)

func TestAllocSkipsOfflineNodes(t *testing.T) {
	a, ini := knlAlloc(t)

	// Bandwidth from cluster 0 normally lands on its MCDRAM. Take that
	// node offline: the allocator must fall down the ranking instead of
	// failing.
	buf, dec, err := a.Alloc("probe", gib, memattr.Bandwidth, ini)
	if err != nil {
		t.Fatal(err)
	}
	best := buf.SegmentsSnapshot()[0].Node
	if err := a.Machine().Free(buf); err != nil {
		t.Fatal(err)
	}

	best.SetOffline(true)
	buf2, dec2, err := a.Alloc("probe2", gib, memattr.Bandwidth, ini)
	if err != nil {
		t.Fatalf("alloc with best node offline: %v", err)
	}
	if got := buf2.SegmentsSnapshot()[0].Node; got == best {
		t.Fatalf("allocation landed on the offline node %s#%d", got.Kind(), got.OSIndex())
	}
	if dec2.RankPosition <= dec.RankPosition {
		t.Fatalf("rank %d with node offline, want below rank %d", dec2.RankPosition, dec.RankPosition)
	}

	// Back online: placement returns to the best target.
	best.SetOffline(false)
	buf3, dec3, err := a.Alloc("probe3", gib, memattr.Bandwidth, ini)
	if err != nil {
		t.Fatal(err)
	}
	if buf3.SegmentsSnapshot()[0].Node != best || dec3.RankPosition != 0 {
		t.Fatalf("after recovery rank=%d node=%s, want rank 0 on the original best",
			dec3.RankPosition, buf3.NodeNames())
	}
}

func TestWithAvoidDemotesButKeepsLastResort(t *testing.T) {
	a, ini := knlAlloc(t)

	buf, _, err := a.Alloc("probe", gib, memattr.Bandwidth, ini)
	if err != nil {
		t.Fatal(err)
	}
	best := buf.SegmentsSnapshot()[0].Node
	if err := a.Machine().Free(buf); err != nil {
		t.Fatal(err)
	}
	avoidBest := func(o *topology.Object) bool { return o.OSIndex == best.OSIndex() }

	// Avoided: the best node is demoted, another target wins.
	buf2, _, err := a.Alloc("avoided", gib, memattr.Bandwidth, ini, WithAvoid(avoidBest))
	if err != nil {
		t.Fatal(err)
	}
	if buf2.SegmentsSnapshot()[0].Node == best {
		t.Fatal("avoided node still chosen while alternatives exist")
	}

	// Avoided nodes stay available as last resort: avoid everything
	// except the best node, and the best node must win.
	avoidOthers := func(o *topology.Object) bool { return o.OSIndex != best.OSIndex() }
	buf3, _, err := a.Alloc("lastresort", gib, memattr.Bandwidth, ini, WithAvoid(avoidOthers))
	if err != nil {
		t.Fatal(err)
	}
	if buf3.SegmentsSnapshot()[0].Node != best {
		t.Fatalf("placement %s, want the single non-avoided node", buf3.NodeNames())
	}

	// Avoiding every node must still allocate somewhere (graceful
	// degradation, not hard failure).
	all := func(*topology.Object) bool { return true }
	if _, _, err := a.Alloc("everyoneavoided", gib, memattr.Bandwidth, ini, WithAvoid(all)); err != nil {
		t.Fatalf("alloc with all nodes avoided: %v", err)
	}
}

func TestMigrateToBestSkipsOfflineDestination(t *testing.T) {
	a, ini := knlAlloc(t)

	buf, _, err := a.Alloc("mover", gib, memattr.Capacity, ini)
	if err != nil {
		t.Fatal(err)
	}
	// Find the best bandwidth target and kill it; migration must land
	// elsewhere.
	ranked, _, _, err := a.Candidates(memattr.Bandwidth, ini, false)
	if err != nil {
		t.Fatal(err)
	}
	best := a.Machine().Node(ranked[0].Target)
	best.SetOffline(true)
	defer best.SetOffline(false)

	_, dec, err := a.MigrateToBest(buf, memattr.Bandwidth, ini)
	if err != nil {
		t.Fatalf("migrate with best target offline: %v", err)
	}
	if dec.Target.OSIndex == best.OSIndex() {
		t.Fatal("migration chose the offline node")
	}
}

func TestTransientFaultPropagates(t *testing.T) {
	a, ini := knlAlloc(t)

	ranked, _, _, err := a.Candidates(memattr.Bandwidth, ini, false)
	if err != nil {
		t.Fatal(err)
	}
	a.Machine().Node(ranked[0].Target).InjectAllocFailures(1)

	// A transient fault is not silently absorbed by ranked fallback: the
	// caller (the daemon) surfaces it as retryable.
	if _, _, err := a.Alloc("x", gib, memattr.Bandwidth, ini); !errors.Is(err, memsim.ErrTransient) {
		t.Fatalf("alloc with injected fault: %v, want ErrTransient", err)
	}
	// The fault drained with that attempt; the retry succeeds on the
	// best node.
	if _, dec, err := a.Alloc("x", gib, memattr.Bandwidth, ini); err != nil || dec.RankPosition != 0 {
		t.Fatalf("retry: dec=%+v err=%v", dec, err)
	}
}
