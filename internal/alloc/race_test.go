package alloc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
)

// TestConcurrentAllocFreeMigrate hammers one allocator from 32
// goroutines doing mixed alloc/free/migrate, then checks that the
// per-node capacity accounting exactly matches the surviving buffers.
// Run with -race: this is the stress test backing the package's
// concurrency guarantee (and the hetmemd daemon built on it).
func TestConcurrentAllocFreeMigrate(t *testing.T) {
	a, ini := xeonAlloc(t)

	const (
		goroutines = 32
		iterations = 200
	)
	attrs := []memattr.ID{memattr.Bandwidth, memattr.Latency, memattr.Capacity}

	var (
		mu   sync.Mutex
		live []*memsim.Buffer
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var mine []*memsim.Buffer
			for i := 0; i < iterations; i++ {
				switch op := rng.Intn(10); {
				case op < 5 || len(mine) == 0:
					size := uint64(1+rng.Intn(64)) << 20
					buf, _, err := a.Alloc("stress", size, attrs[rng.Intn(len(attrs))], ini,
						WithRemote(), WithPartial())
					if err != nil {
						// Under pressure exhaustion is legal; corruption is not.
						if !errors.Is(err, ErrExhausted) {
							t.Error(err)
						}
						continue
					}
					mine = append(mine, buf)
				case op < 8:
					j := rng.Intn(len(mine))
					if err := a.m.Free(mine[j]); err != nil {
						t.Error(err)
					}
					mine = append(mine[:j], mine[j+1:]...)
				default:
					j := rng.Intn(len(mine))
					_, _, err := a.MigrateToBest(mine[j], attrs[rng.Intn(len(attrs))], ini, WithRemote())
					if err != nil && !errors.Is(err, ErrExhausted) {
						t.Error(err)
					}
				}
			}
			mu.Lock()
			live = append(live, mine...)
			mu.Unlock()
		}(int64(g))
	}
	wg.Wait()

	// Per-node accounting must equal the sum of live segments.
	want := map[*memsim.Node]uint64{}
	for _, b := range live {
		for _, seg := range b.SegmentsSnapshot() {
			want[seg.Node] += seg.Bytes
		}
	}
	for _, n := range a.m.Nodes() {
		if got := n.Allocated(); got != want[n] {
			t.Errorf("%s#%d: allocated=%d, live segments sum to %d", n.Kind(), n.OSIndex(), got, want[n])
		}
	}

	// Free everything: accounting must return to zero.
	for _, b := range live {
		if err := a.m.Free(b); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range a.m.Nodes() {
		if got := n.Allocated(); got != 0 {
			t.Errorf("%s#%d: %d bytes leaked", n.Kind(), n.OSIndex(), got)
		}
	}
}

// TestConcurrentDoubleFree checks that racing frees of the same buffer
// release its capacity exactly once.
func TestConcurrentDoubleFree(t *testing.T) {
	a, ini := xeonAlloc(t)
	for i := 0; i < 50; i++ {
		buf, _, err := a.Alloc("b", 1<<20, memattr.Bandwidth, ini)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var freedOK, freedErr int64
		var mu sync.Mutex
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := a.m.Free(buf)
				mu.Lock()
				defer mu.Unlock()
				if err == nil {
					freedOK++
				} else if errors.Is(err, memsim.ErrFreed) {
					freedErr++
				} else {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		if freedOK != 1 || freedErr != 3 {
			t.Fatalf("double free: ok=%d err=%d", freedOK, freedErr)
		}
	}
	for _, n := range a.m.Nodes() {
		if got := n.Allocated(); got != 0 {
			t.Errorf("%s#%d: %d bytes leaked", n.Kind(), n.OSIndex(), got)
		}
	}
}
