package alloc

import (
	"testing"

	"hetmem/internal/bitmap"
	"hetmem/internal/memattr"
	"hetmem/internal/topology"
)

// TestCandidateCacheHit: the second identical Candidates call must be
// served from the cache, and both calls must agree on the ranking.
func TestCandidateCacheHit(t *testing.T) {
	a, ini := xeonAlloc(t)
	first, used1, _, err := a.Candidates(memattr.Bandwidth, ini, false)
	if err != nil {
		t.Fatal(err)
	}
	second, used2, _, err := a.Candidates(memattr.Bandwidth, ini, false)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := a.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats after two identical calls: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if used1 != used2 || len(first) != len(second) {
		t.Fatalf("cached ranking disagrees with computed one: %v vs %v", first, second)
	}
	for i := range first {
		if first[i].Target != second[i].Target {
			t.Fatalf("rank %d: cached target %v != computed %v", i, second[i].Target, first[i].Target)
		}
	}
}

// TestCandidateCacheKeying: different attributes, initiators, and the
// remote option must not share entries.
func TestCandidateCacheKeying(t *testing.T) {
	a, ini := xeonAlloc(t)
	other := bitmap.NewFromRange(20, 39) // the other package's cores
	calls := []struct {
		attr   memattr.ID
		ini    *bitmap.Bitmap
		remote bool
	}{
		{memattr.Bandwidth, ini, false},
		{memattr.Latency, ini, false},
		{memattr.Bandwidth, other, false},
		{memattr.Bandwidth, ini, true},
	}
	for _, c := range calls {
		if _, _, _, err := a.Candidates(c.attr, c.ini, c.remote); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := a.CacheStats(); hits != 0 || misses != 4 {
		t.Fatalf("distinct keys should all miss: hits=%d misses=%d, want 0/4", hits, misses)
	}
	// Replaying each key now hits.
	for _, c := range calls {
		if _, _, _, err := a.Candidates(c.attr, c.ini, c.remote); err != nil {
			t.Fatal(err)
		}
	}
	if hits, _ := a.CacheStats(); hits != 4 {
		t.Fatalf("replayed keys should all hit: hits=%d, want 4", hits)
	}
}

// TestCandidateCacheMachineInvalidation: a memsim fault-state change
// (capacity limit, perf factors, offline) bumps the machine generation
// and must force a re-rank.
func TestCandidateCacheMachineInvalidation(t *testing.T) {
	a, ini := xeonAlloc(t)
	if _, _, _, err := a.Candidates(memattr.Bandwidth, ini, false); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := a.Candidates(memattr.Bandwidth, ini, false); err != nil {
		t.Fatal(err)
	}
	if hits, _ := a.CacheStats(); hits != 1 {
		t.Fatalf("warm-up should hit once, got %d", hits)
	}

	n := a.Machine().Nodes()[0]
	n.SetCapacityLimit(1 << 20)
	if _, _, _, err := a.Candidates(memattr.Bandwidth, ini, false); err != nil {
		t.Fatal(err)
	}
	if hits, misses := a.CacheStats(); hits != 1 || misses != 2 {
		t.Fatalf("after SetCapacityLimit: hits=%d misses=%d, want 1/2 (stale entry must miss)", hits, misses)
	}

	n.SetOffline(true)
	defer n.SetOffline(false)
	if _, _, _, err := a.Candidates(memattr.Bandwidth, ini, false); err != nil {
		t.Fatal(err)
	}
	if _, misses := a.CacheStats(); misses != 3 {
		t.Fatalf("after SetOffline: misses=%d, want 3", misses)
	}
}

// TestCandidateCacheRegistryInvalidation: registry edits are invisible
// to memsim, so the daemon calls InvalidateCandidates; after it, a
// changed attribute value must produce a re-ranked result.
func TestCandidateCacheRegistryInvalidation(t *testing.T) {
	a, ini := xeonAlloc(t)
	ranked, used, _, err := a.Candidates(memattr.Bandwidth, ini, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) < 2 {
		t.Fatalf("need at least 2 candidates, got %d", len(ranked))
	}
	// Swap the ranking by making the runner-up dramatically faster.
	best, next := ranked[0], ranked[1]
	if err := a.Registry().SetValue(used, next.Target, ini, best.Value*10); err != nil {
		t.Fatal(err)
	}

	// Without invalidation the stale ranking would still be served.
	stale, _, _, err := a.Candidates(memattr.Bandwidth, ini, false)
	if err != nil {
		t.Fatal(err)
	}
	if stale[0].Target != best.Target {
		t.Fatalf("expected the stale cached ranking before invalidation, got %v first", stale[0].Target)
	}

	a.InvalidateCandidates()
	fresh, _, _, err := a.Candidates(memattr.Bandwidth, ini, false)
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0].Target != next.Target {
		t.Fatalf("after InvalidateCandidates the boosted node must rank first: got %v, want %v",
			fresh[0].Target, next.Target)
	}
}

// TestCandidateCacheDisabled: with the cache off every call re-ranks
// and the stats stay zero.
func TestCandidateCacheDisabled(t *testing.T) {
	a, ini := xeonAlloc(t)
	a.DisableCandidateCache()
	for i := 0; i < 3; i++ {
		if _, _, _, err := a.Candidates(memattr.Bandwidth, ini, false); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := a.CacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache must not count: hits=%d misses=%d", hits, misses)
	}
}

// TestCachedRankingNotCorruptedByAvoid: demote must copy the cached
// slice — an Alloc with WithAvoid between two Candidates calls must not
// reorder the cached ranking in place.
func TestCachedRankingNotCorruptedByAvoid(t *testing.T) {
	a, ini := xeonAlloc(t)
	ranked, _, _, err := a.Candidates(memattr.Bandwidth, ini, false)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]memattr.TargetValue, len(ranked))
	copy(want, ranked)

	// Avoid the best-ranked target: the allocation lands elsewhere.
	best := ranked[0].Target
	buf, dec, err := a.Alloc("avoid", 1<<20, memattr.Bandwidth, ini,
		WithAvoid(func(o *topology.Object) bool { return o == best }))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Machine().Free(buf)
	if dec.Target == best {
		t.Fatalf("avoided target was chosen anyway")
	}

	again, _, _, err := a.Candidates(memattr.Bandwidth, ini, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if again[i].Target != want[i].Target {
			t.Fatalf("cached ranking mutated by WithAvoid: rank %d is %v, want %v",
				i, again[i].Target, want[i].Target)
		}
	}
}
