# Convenience targets; everything is plain `go` underneath.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build vet test race bench repro cover fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

repro:
	$(GO) run ./cmd/repro

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/hmat/
	$(GO) test -fuzz=FuzzParseList -fuzztime=$(FUZZTIME) ./internal/bitmap/
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=$(FUZZTIME) ./internal/server/

clean:
	$(GO) clean ./...
