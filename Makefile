# Convenience targets; everything is plain `go` underneath.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build vet test race bench bench-alloc bench-cluster advisorbench repro cover fuzz chaos clustertest netchaos reapstress tenantstress clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The /alloc fast-path acceptance run: baseline (fsync per record, no
# candidate cache) vs fast (group commit + cache) at 32 clients,
# recorded in BENCH_alloc.json.
bench-alloc:
	$(GO) run ./cmd/hetmemd bench -clients 32 -out BENCH_alloc.json

# Router vs single-daemon throughput/latency, recorded in
# BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/hetmemd bench -cluster -cluster-out BENCH_cluster.json

# Tiering-advisor acceptance: the convergence/pause/budget/restart
# tests under -race, then the phased-workload A/B — the advisor run
# must beat the static run by >=1.15x simulated time after paying its
# migration costs, recorded in BENCH_advisor.json.
advisorbench:
	$(GO) test -race -run 'TestAdvisor|TestLeaseDetail' ./internal/server
	$(GO) run ./cmd/hetmemd bench -advisor -advisor-out BENCH_advisor.json

repro:
	$(GO) run ./cmd/repro

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/hmat/
	$(GO) test -fuzz=FuzzParseList -fuzztime=$(FUZZTIME) ./internal/bitmap/
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) ./internal/journal/
	$(GO) test -fuzz=FuzzSnapshotRecovery -fuzztime=$(FUZZTIME) ./internal/journal/
	$(GO) test -fuzz=FuzzWireFrame -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzWireRequestDecode -fuzztime=$(FUZZTIME) ./internal/wire/

chaos:
	$(GO) run ./cmd/hetmemd chaostest -clients 16 -requests 50 -steps 40

# Cluster acceptance: the federation tests (rendezvous properties,
# router end-to-end, journal restart, member-kill chaos) under -race,
# then the full 1000-client loadtest through the router with one
# member killed mid-run.
clustertest:
	$(GO) test -race ./internal/cluster
	$(GO) run ./cmd/hetmemd loadtest -cluster -kill 1 -kill-after 2s

# Partition tolerance: the chaos-proxy and scrubber tests under -race,
# then the full suite — seeded network faults on every router->member
# link, a wiped-journal member restart mid-load, and anti-entropy
# scrub convergence, with the per-cycle report in SCRUB_report.json.
netchaos:
	$(GO) test -race ./internal/netfaults
	$(GO) test -race -run 'TestScrub|TestFlapping|TestAsymmetric' ./internal/cluster
	$(GO) run ./cmd/hetmemd chaostest -cluster -net-seed 7 -restart 1 -scrub-report SCRUB_report.json

reapstress:
	$(GO) run ./cmd/hetmemd reapstress -ttl 1s -crashers 32 -holders 16

# Multi-tenant QoS acceptance: the admission boundary tests under
# -race, then the isolation scenario — a greedy best-effort tenant
# saturating a 4-member cluster against a guaranteed tenant's p99 and
# zero-lost-leases invariants, with the run recorded in
# TENANT_report.json.
tenantstress:
	$(GO) test -race -run 'TestShedWatermark|TestQuota|TestBurstable|TestQueueTimeout|TestDefaultTenant|TestClientFailsFast' ./internal/server
	$(GO) run ./cmd/hetmemd tenantstress -report TENANT_report.json

clean:
	$(GO) clean ./...
