# Convenience targets; everything is plain `go` underneath.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build vet test race bench bench-alloc repro cover fuzz chaos reapstress clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The /alloc fast-path acceptance run: baseline (fsync per record, no
# candidate cache) vs fast (group commit + cache) at 32 clients,
# recorded in BENCH_alloc.json.
bench-alloc:
	$(GO) run ./cmd/hetmemd bench -clients 32 -out BENCH_alloc.json

repro:
	$(GO) run ./cmd/repro

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/hmat/
	$(GO) test -fuzz=FuzzParseList -fuzztime=$(FUZZTIME) ./internal/bitmap/
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) ./internal/journal/
	$(GO) test -fuzz=FuzzSnapshotRecovery -fuzztime=$(FUZZTIME) ./internal/journal/

chaos:
	$(GO) run ./cmd/hetmemd chaostest -clients 16 -requests 50 -steps 40

reapstress:
	$(GO) run ./cmd/hetmemd reapstress -ttl 1s -crashers 32 -holders 16

clean:
	$(GO) clean ./...
