# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench repro cover fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

repro:
	$(GO) run ./cmd/repro

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/hmat/
	$(GO) test -fuzz=FuzzParseList -fuzztime=30s ./internal/bitmap/

clean:
	$(GO) clean ./...
