// Daemon client: talk to a running hetmemd placement daemon with the
// server.Client Go API — the service-oriented version of the
// quickstart, where placement decisions come from a shared daemon
// instead of an in-process allocator.
//
//	go run ./examples/daemonclient                 # boots a daemon in-process
//	go run ./examples/daemonclient http://host:7077  # uses a running daemon
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"hetmem/internal/core"
	"hetmem/internal/server"
)

func main() {
	base := ""
	if len(os.Args) > 1 {
		base = os.Args[1]
	}
	if base == "" {
		// No daemon given: boot one in-process on a random port, the
		// way hetmemd serve would.
		sys, err := core.NewSystem("xeon", core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, server.New(sys).Handler())
		base = "http://" + ln.Addr().String()
		fmt.Printf("booted an in-process daemon on %s (platform xeon)\n\n", base)
	}
	cl := server.NewClient(base)
	ctx := context.Background()

	// What machine is on the other side?
	topo, err := cl.Topology(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon serves a machine with %d NUMA nodes and %d PUs\n",
		len(topo.NUMANodes()), topo.Root().CPUSet.Weight())

	// The Figure-5-style attribute dump, as data.
	attrs, err := cl.Attrs(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range attrs {
		if len(a.Values) > 0 {
			fmt.Printf("  %-16s %d values (%s)\n", a.Name, len(a.Values), a.Flags)
		}
	}

	// Three buffers, three needs — the daemon picks the technology.
	// One /v1/alloc/batch round trip places them all: one HTTP
	// request, one journal write on the daemon side.
	fmt.Println("\nallocating by attribute (initiator: PUs 0-19, one batch):")
	batch, err := cl.AllocBatch(ctx, []server.AllocRequest{
		{Name: "frontier", Size: 1 << 30, Attr: "Bandwidth", Initiator: "0-19"},
		{Name: "index", Size: 1 << 30, Attr: "Latency", Initiator: "0-19"},
		{Name: "log", Size: 200 << 30, Attr: "Capacity", Initiator: "0-19"},
	})
	if err != nil {
		log.Fatal(err)
	}
	var leases []uint64
	for _, item := range batch.Results {
		if item.Error != nil {
			log.Fatalf("batch item failed: %s: %s", item.Error.Code, item.Error.Message)
		}
		fmt.Printf("  -> %-10s (lease %d, rank %d)\n",
			item.Alloc.Placement, item.Alloc.Lease, item.Alloc.Rank)
		leases = append(leases, item.Alloc.Lease)
	}

	// v1 errors are typed: switch on the code with errors.Is/As, not
	// on message text.
	_, err = cl.Alloc(ctx, server.AllocRequest{Name: "typo", Size: 1, Attr: "Bandwdith", Initiator: "0-19"})
	switch {
	case errors.Is(err, server.ErrCodeBadRequest):
		var apiErr *server.APIError
		errors.As(err, &apiErr)
		fmt.Printf("\ntyped error demo: HTTP %d, code %q, retryable=%v\n",
			apiErr.StatusCode, apiErr.Code, apiErr.Retryable)
	case err == nil:
		log.Fatal("alloc of a misspelled attribute should have failed")
	default:
		log.Fatal(err)
	}

	// A phase change: the frontier becomes capacity-bound.
	mig, err := cl.Migrate(ctx, server.MigrateRequest{Lease: leases[0], Attr: "Capacity", Initiator: "0-19"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase change: frontier migrated to %s (simulated copy: %.3fs)\n",
		mig.Placement, mig.CostSeconds)

	// The daemon's books.
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndaemon metrics: %.0f allocs, %.0f migrations, %.0f bytes placed, %.0f leases active\n",
		metrics["hetmemd_alloc_total"], metrics["hetmemd_migrate_total"],
		metrics["hetmemd_bytes_placed_total"], metrics["hetmemd_leases_active"])

	for _, l := range leases {
		if err := cl.Free(ctx, l); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("freed all leases")
}
