// Quickstart: discover a heterogeneous machine, inspect its memory
// attributes, and allocate buffers by stating what each one needs —
// never which technology to use.
//
//	go run ./examples/quickstart [platform]
package main

import (
	"fmt"
	"log"
	"os"

	"hetmem/internal/core"
	"hetmem/internal/lstopo"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
)

func main() {
	platformName := "knl-snc4-flat"
	if len(os.Args) > 1 {
		platformName = os.Args[1]
	}

	// 1. Build the system: topology + attribute discovery (from the
	// firmware HMAT when present, from benchmarking otherwise).
	sys, err := core.NewSystem(platformName, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform %s, attributes discovered via %s\n\n", sys.Platform.Name, sys.Source)
	fmt.Print(lstopo.Render(sys.Topology()))

	// 2. Where do my threads run? Everything is relative to an
	// initiator: here, the first SNC cluster (or package).
	ini := sys.InitiatorForGroup(0)
	fmt.Printf("\nthreads on PUs %s; local NUMA nodes:\n", ini.ListString())
	for _, n := range sys.Topology().LocalNUMANodes(ini) {
		bw, _ := sys.Registry.Value(memattr.Bandwidth, n, ini)
		lat, _ := sys.Registry.Value(memattr.Latency, n, ini)
		fmt.Printf("  %-34s bandwidth %6d MB/s, latency %3d ns\n", n, bw, lat)
	}

	// 3. Allocate by requirement. The same three lines run unchanged
	// on every platform and adapt to whatever memory it has.
	const gib = 1 << 30
	hot, dec, err := sys.MemAlloc("hot-stream", 1*gib, memattr.Bandwidth, ini)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbandwidth-critical buffer  -> %-12s (%s)\n", hot.NodeNames(), dec)

	idx, dec, err := sys.MemAlloc("graph-index", 1*gib, memattr.Latency, ini)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency-critical buffer    -> %-12s (%s)\n", idx.NodeNames(), dec)

	cold, dec, err := sys.MemAlloc("checkpoint", 8*gib, memattr.Capacity, ini)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capacity-hungry buffer     -> %-12s (%s)\n", cold.NodeNames(), dec)

	// 4. Run a kernel against the placement and watch the simulated
	// clock.
	eng := sys.Engine(ini)
	res := eng.Phase("triad-ish", []memsim.Access{
		{Buffer: hot, ReadBytes: 8 * gib, WriteBytes: 4 * gib},
		{Buffer: idx, RandomReads: 20_000_000, MLP: 8},
	})
	fmt.Printf("\nkernel: %.3f s (stream %.3f, random %.3f, cpu %.3f), %.1f GiB/s, bound by %s\n",
		res.Seconds, res.StreamSeconds, res.RandomSeconds, res.CPUSeconds, res.AchievedBW, res.BoundKind)
}
