// Capacity pressure (paper Section VII): many buffers compete for a
// 4GB MCDRAM. First-come-first-served lets unimportant scratch steal
// the fast memory from the critical buffer allocated last; priority
// planning fixes it; hybrid (partial) allocation handles buffers
// larger than any node; and the OpenMP allocator traits show how a
// runtime exposes the same machinery.
//
//	go run ./examples/capacitypressure
package main

import (
	"fmt"
	"log"

	"hetmem/internal/alloc"
	"hetmem/internal/bitmap"
	"hetmem/internal/core"
	"hetmem/internal/memattr"
	"hetmem/internal/ompspace"
)

const gib = uint64(1) << 30

func main() {
	reqs := []alloc.Request{
		{Name: "halo-scratch", Size: 2 * gib, Attr: memattr.Bandwidth, Priority: 1},
		{Name: "rhs-vector", Size: 1 * gib, Attr: memattr.Bandwidth, Priority: 3},
		{Name: "matrix-hot", Size: 3 * gib, Attr: memattr.Bandwidth, Priority: 9},
	}

	fmt.Println("three bandwidth-hungry buffers vs a 4GB MCDRAM (KNL cluster)")
	for _, mode := range []string{"FCFS", "priority"} {
		sys := mustSystem()
		ini := sys.InitiatorForGroup(0)
		var placements []alloc.Placement
		if mode == "FCFS" {
			placements = sys.Allocator.PlanFCFS(reqs, ini)
		} else {
			placements = sys.Allocator.PlanPriority(reqs, ini)
		}
		fmt.Printf("\n%s order:\n", mode)
		for _, p := range placements {
			if p.Err != nil {
				fmt.Printf("  %-13s prio %d -> error: %v\n", p.Request.Name, p.Request.Priority, p.Err)
				continue
			}
			fmt.Printf("  %-13s prio %d -> %s\n", p.Request.Name, p.Request.Priority, p.Buffer.NodeNames())
		}
	}

	// Hybrid allocation: a buffer bigger than both local nodes put
	// together would fail; one bigger than any single node splits.
	sys := mustSystem()
	ini := sys.InitiatorForGroup(0)
	big, dec, err := sys.MemAlloc("checkpoint", 26*gib, memattr.Bandwidth, ini, alloc.WithPartial())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n26GiB with WithPartial -> %s (partial=%v): the fast node holds what fits\n",
		big.NodeNames(), dec.Partial)

	// The same pressure through OpenMP 5.0 allocator traits.
	fmt.Println("\nOpenMP view (omp_high_bw_mem_space):")
	showOMP(ompspace.DefaultMemFB, "omp_atv_default_mem_fb", ini)
	showOMP(ompspace.NullFB, "omp_atv_null_fb", ini)
}

func mustSystem() *core.System {
	sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func showOMP(fb ompspace.Fallback, label string, ini *bitmap.Bitmap) {
	sys := mustSystem()
	al, err := ompspace.NewAllocator(ompspace.HighBWMem, ompspace.Traits{Fallback: fb}, sys.Allocator, ini)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := al.Alloc("fill", 4*gib); err != nil {
		log.Fatal(err)
	}
	b, err := al.Alloc("spill", gib)
	if err != nil {
		fmt.Printf("  %-24s space full -> %v\n", label, err)
		return
	}
	fmt.Printf("  %-24s space full -> spilled to %s\n", label, b.NodeNames())
}
