// Phase advisor: the runtime-managed version of phasemigration. A
// Manager watches the hardware counters of managed buffers between
// phases, classifies their behaviour, and migrates only when the
// expected gain over the remaining phases amortizes the copy —
// Section VII of the paper as a reusable component instead of
// hand-written logic.
//
//	go run ./examples/phaseadvisor
package main

import (
	"fmt"
	"log"

	"hetmem/internal/core"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/phases"
)

const gib = uint64(1) << 30

func main() {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ini := sys.InitiatorForPackage(0)

	// The application starts with the DRAM full of scratch; its hot
	// index lands on NVDIMM.
	scratch, _, err := sys.MemAlloc("scratch", 190*gib, memattr.Latency, ini)
	if err != nil {
		log.Fatal(err)
	}
	index, dec, err := sys.MemAlloc("graph-index", 6*gib, memattr.Latency, ini)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph-index allocated on %s (rank %d: DRAM was full)\n\n", dec.Target.Subtype, dec.RankPosition)

	eng := sys.Engine(ini)
	mgr := phases.NewManager(sys.Allocator, ini, eng.Threads())
	mgr.Manage(index)

	chase := func(tag string) {
		eng.Phase(tag, []memsim.Access{{Buffer: index, RandomReads: 250_000_000, MLP: 4}})
	}

	// Phase 1 runs with the DRAM still full; the advisor can only
	// watch.
	chase("phase-1")
	mgr.Horizon = 6 // the caller expects ~6 more phases like this one
	for _, a := range mgr.Observe() {
		fmt.Printf("after phase 1: %-11s %-15s -> %s\n", a.Buffer.Name, a.Behaviour, a.Reason)
	}

	// The scratch goes away between phases; now the advisor has a
	// feasible better target.
	sys.Free(scratch)
	chase("phase-2")
	advice := mgr.Observe()
	for _, a := range advice {
		fmt.Printf("after phase 2: %-11s %-15s -> %s\n", a.Buffer.Name, a.Behaviour, a.Reason)
	}
	cost, err := mgr.Apply(advice, eng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmigrated to %s for %.2f s\n", index.NodeNames(), cost)

	for i := 3; i <= 8; i++ {
		chase(fmt.Sprintf("phase-%d", i))
	}
	fmt.Printf("total runtime with advisor: %.2f s\n", eng.Elapsed())

	// Baseline: same phases, nobody watching.
	base, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bIni := base.InitiatorForPackage(0)
	bScratch, _, _ := base.MemAlloc("scratch", 190*gib, memattr.Latency, bIni)
	bIndex, _, _ := base.MemAlloc("graph-index", 6*gib, memattr.Latency, bIni)
	bEng := base.Engine(bIni)
	bEng.Phase("phase-1", []memsim.Access{{Buffer: bIndex, RandomReads: 250_000_000, MLP: 4}})
	base.Free(bScratch)
	for i := 2; i <= 8; i++ {
		bEng.Phase("phase", []memsim.Access{{Buffer: bIndex, RandomReads: 250_000_000, MLP: 4}})
	}
	fmt.Printf("total runtime without:      %.2f s\n", bEng.Elapsed())
}
