// Autotune: record one run of an application, search buffer placements
// post-mortem by replaying the trace (Servat/MOCA-style, paper Section
// V-B), and turn the winning placement into interposition hints so the
// next run allocates optimally without any code change.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"strings"

	"hetmem/internal/core"
	"hetmem/internal/interpose"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/trace"
)

const gib = uint64(1) << 30

// The "application": three buffers with different personalities, all
// naively allocated on the default node.
func runApp(rec *trace.Recorder, table, column, index *memsim.Buffer) {
	for i := 0; i < 4; i++ {
		rec.Phase("scan", []memsim.Access{
			{Buffer: table, ReadBytes: 30 * gib},
			{Buffer: column, ReadBytes: 30 * gib, WriteBytes: 8 * gib},
		})
		rec.Phase("lookup", []memsim.Access{
			{Buffer: index, RandomReads: 30_000_000, MLP: 2},
		})
	}
}

func main() {
	sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ini := sys.InitiatorForGroup(0)
	m := sys.Machine

	// --- Run 1: everything on the default node, recorded. ---
	table, _ := m.Alloc("table", 3*gib, m.NodeByOS(0))
	column, _ := m.Alloc("column", 2*gib, m.NodeByOS(0))
	index, _ := m.Alloc("index", 1*gib, m.NodeByOS(0))
	eng := memsim.NewEngine(m, ini)
	rec := trace.NewRecorder(eng)
	runApp(rec, table, column, index)
	naive := eng.Elapsed()
	fmt.Printf("run 1 (everything on DRAM): %.2f s\n\n", naive)

	// --- Post-mortem placement search over the recorded trace. ---
	tr := rec.Trace()
	mk := func() (*memsim.Machine, error) { return sys.Platform.NewMachine() }
	ex, err := trace.Exhaustive(tr, mk, ini, []int{0, 4}, 512)
	if err != nil {
		log.Fatal(err)
	}
	gr, err := trace.Greedy(tr, mk, ini, []int{0, 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive search (%d replays): %s -> %.2f s\n", ex.Evaluated, ex.Best, ex.Seconds)
	fmt.Printf("greedy search     (%d replays): %s -> %.2f s\n\n", gr.Evaluated, gr.Best, gr.Seconds)

	// --- Turn the placement into attribute hints. The searcher says
	// *where*; we express it as *what the buffer needs* so it stays
	// portable (node 4 is the MCDRAM: bandwidth; node 0: capacity). ---
	var rules strings.Builder
	for name, os := range ex.Best {
		attr := "Capacity"
		if sys.Machine.NodeByOS(os).Kind() == "MCDRAM" {
			attr = "Bandwidth"
		}
		fmt.Fprintf(&rules, "%s %s\n", name, attr)
	}
	fmt.Printf("generated hints:\n%s\n", rules.String())

	// --- Run 2: fresh machine, hints applied through interposition. ---
	sys2, err := core.NewSystem("knl-snc4-flat", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := interpose.ParseRules(strings.NewReader(rules.String()), sys2.Registry)
	if err != nil {
		log.Fatal(err)
	}
	ip := interpose.New(sys2.Allocator, ini, memattr.Capacity)
	for _, r := range parsed {
		if err := ip.AddRule(r); err != nil {
			log.Fatal(err)
		}
	}
	t2, _ := ip.Malloc("table", 3*gib)
	c2, _ := ip.Malloc("column", 2*gib)
	i2, _ := ip.Malloc("index", 1*gib)
	eng2 := memsim.NewEngine(sys2.Machine, ini)
	rec2 := trace.NewRecorder(eng2)
	runApp(rec2, t2, c2, i2)
	fmt.Printf("run 2 (hint-driven): %.2f s  (%.0f%% faster)\n", eng2.Elapsed(), 100*(naive/eng2.Elapsed()-1))
	fmt.Print(ip.RenderReport())

	if eng2.Elapsed() >= naive {
		log.Fatal("autotuning failed to improve the run")
	}
}
