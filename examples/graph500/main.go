// Graph500 use case (paper Section VI): determine the application's
// sensitivity by process-level benchmarking on two very different
// machines, converge on the Latency attribute, then allocate the hot
// buffers through the heterogeneous allocator and compare against the
// naive capacity-first placement.
//
//	go run ./examples/graph500
package main

import (
	"fmt"
	"log"

	"hetmem/internal/bitmap"
	"hetmem/internal/core"
	"hetmem/internal/graph500"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/sensitivity"
)

const scale = 23

func main() {
	// --- Step 1: validate the real algorithm at small scale. ---
	edges := graph500.GenerateEdges(14, 16, 42)
	g := graph500.BuildCSR(edges, 1<<14)
	parent, st := graph500.BFS(g, edges[0].U, graph500.BFSOptions{DirectionOptimizing: true})
	if err := graph500.Validate(edges, 1<<14, edges[0].U, parent); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validated BFS at scale 14: %d levels, %d edges scanned (%d bottom-up levels)\n\n",
		st.Levels, st.EdgesScanned, st.BottomUpLevels)

	// --- Step 2: benchmark the whole process per memory kind. ---
	xeon := mustSystem("xeon")
	knl := mustSystem("knl-snc4-flat")

	xeonCands := classify(xeon, xeon.InitiatorForPackage(0), 16, graph500.SimParams{})
	knlCands := classify(knl, knl.InitiatorForGroup(0), 16, graph500.SimParams{CPUPerEdge: 1.8e-7, MLP: 3})
	final := sensitivity.Intersect(xeonCands, knlCands)
	fmt.Printf("\ncandidates on xeon: %v\ncandidates on knl:  %v\nconverged on:       %v\n\n",
		names(xeon, xeonCands), names(knl, knlCands), names(xeon, final))
	if len(final) == 0 {
		log.Fatal("no attribute survived")
	}
	attr := final[0]

	// --- Step 3: allocate with the converged attribute and compare. ---
	for _, sys := range []*core.System{xeon, knl} {
		ini := sys.InitiatorForGroup(0)
		tuned := runPlaced(sys, ini, func(name string, size uint64) (*memsim.Buffer, error) {
			b, _, err := sys.MemAlloc(name, size, attr, ini)
			return b, err
		})
		naive := runPlaced(sys, ini, func(name string, size uint64) (*memsim.Buffer, error) {
			b, _, err := sys.MemAlloc(name, size, memattr.Capacity, ini)
			return b, err
		})
		fmt.Printf("%-14s attribute-tuned %.3fe8 TEPS vs capacity-first %.3fe8 (%.0f%% better)\n",
			sys.Platform.Name, tuned/1e8, naive/1e8, 100*(tuned/naive-1))
	}
	fmt.Println("\nthe same code adapted to both machines without naming MCDRAM or NVDIMM once.")
}

func mustSystem(name string) *core.System {
	sys, err := core.NewSystem(name, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func classify(sys *core.System, ini *bitmap.Bitmap, threads int, params graph500.SimParams) []memattr.ID {
	var nodes []*memsim.Node
	for _, obj := range sys.Topology().LocalNUMANodes(ini) {
		nodes = append(nodes, sys.Machine.Node(obj))
	}
	metrics, err := sensitivity.BenchmarkProcess(nodes, func(n *memsim.Node) (float64, error) {
		teps := runPlaced(sys, ini, func(name string, size uint64) (*memsim.Buffer, error) {
			return sys.Machine.Alloc(name, size, n)
		})
		fmt.Printf("  %-14s all buffers on %-8s -> %.3fe8 TEPS\n", sys.Platform.Name, n.Kind(), teps/1e8)
		return teps, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	cands, err := sensitivity.ClassifyFromBench(metrics, sys.Registry, ini)
	if err != nil {
		log.Fatal(err)
	}
	return cands
}

func runPlaced(sys *core.System, ini *bitmap.Bitmap, place func(string, uint64) (*memsim.Buffer, error)) float64 {
	s := graph500.Sizes(scale, 16)
	bufs, err := graph500.AllocBuffers(place, s)
	if err != nil {
		log.Fatal(err)
	}
	defer bufs.Free(sys.Machine)
	e := sys.Engine(ini)
	e.SetThreads(16)
	an := graph500.AnalyticStats(scale, 16)
	params := graph500.SimParams{}
	if sys.Platform.Name != "xeon" {
		params.CPUPerEdge = 1.8e-7
		params.MLP = 3
	}
	return graph500.RunTEPS(e, bufs, []graph500.BFSStats{an, an}, params).HarmonicTEPS
}

func names(sys *core.System, ids []memattr.ID) []string {
	var out []string
	for _, id := range ids {
		out = append(out, sys.Registry.Name(id))
	}
	return out
}
