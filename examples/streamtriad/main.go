// STREAM Triad by allocation criterion (paper Table III): the same
// bandwidth-hungry kernel allocated by Capacity, Latency and Bandwidth
// on two machines, showing both the criterion's effect and the
// capacity crossover when arrays outgrow the fast memory.
//
//	go run ./examples/streamtriad
package main

import (
	"fmt"
	"log"

	"hetmem/internal/core"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/stream"
)

func main() {
	// The real kernels are verified once against the analytic solution
	// (the original benchmark's check phase).
	if err := stream.RealRun(1_000_000, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("real STREAM kernels verified")

	for _, cfg := range []struct {
		platform string
		totals   []float64 // GiB of total array memory
	}{
		{"xeon", []float64{22.4, 89.4}},
		{"knl-snc4-flat", []float64{1.1, 3.4, 17.9}},
	} {
		fmt.Printf("\n=== %s ===\n", cfg.platform)
		for _, attr := range []memattr.ID{memattr.Capacity, memattr.Latency, memattr.Bandwidth} {
			sys, err := core.NewSystem(cfg.platform, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			ini := sys.InitiatorForGroup(0)
			fmt.Printf("criterion %-10s:", sys.Registry.Name(attr))
			for _, total := range cfg.totals {
				elems := uint64(total * float64(1<<30) / 3 / stream.ElemBytes)
				var target string
				ar, err := stream.AllocArrays(func(name string, size uint64) (*memsim.Buffer, error) {
					b, dec, err := sys.MemAlloc(name, size, attr, ini)
					if err == nil && target == "" {
						target = dec.Target.Subtype
					}
					return b, err
				}, elems)
				if err != nil {
					fmt.Printf("  %6.1fGiB: (does not fit)", total)
					continue
				}
				e := sys.Engine(ini)
				res := stream.Run(e, ar, 3)
				fmt.Printf("  %6.1fGiB on %-6s %6.2f GB/s", total, target, res.TriadBW)
				ar.Free(sys.Machine)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nnote the KNL 17.9GiB bandwidth run: each array exceeds the 4GB MCDRAM,")
	fmt.Println("so the allocator's ranked fallback lands on DRAM - the paper's 29.16 GB/s cell.")
}
