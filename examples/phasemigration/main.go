// Phase migration (paper Section VII): a latency-sensitive buffer was
// allocated late — the DRAM was full of scratch data, so the ranked
// fallback placed it on NVDIMM. After the scratch is freed, the buffer
// can migrate to the latency-best target, but the OS copy is
// expensive: it only pays off when enough work remains — exactly the
// trade-off the paper describes ("late allocations of performance
// sensitive buffers should thus be moved earlier when possible").
//
//	go run ./examples/phasemigration
package main

import (
	"fmt"
	"log"

	"hetmem/internal/core"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
)

const (
	gib     = uint64(1) << 30
	bufSize = 8 * gib
	chases  = 300_000_000 // dependent loads per compute phase
)

func main() {
	fmt.Println("Xeon: a latency-sensitive buffer stranded on NVDIMM while DRAM was full")
	for _, phases := range []int{1, 4} {
		static := run(phases, false)
		migrated := run(phases, true)
		verdict := "migration loses"
		if migrated < static {
			verdict = "migration wins"
		}
		fmt.Printf("%d remaining phase(s): stay on NVDIMM %.2f s, migrate to DRAM %.2f s -> %s\n",
			phases, static, migrated, verdict)
	}
	fmt.Println("\nthe copy cost is fixed; only enough remaining work amortizes it.")
}

func run(phases int, migrate bool) float64 {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ini := sys.InitiatorForPackage(0)

	// The DRAM is full of scratch when the buffer arrives: the
	// latency request falls back to the NVDIMM (rank 1).
	scratch, _, err := sys.MemAlloc("scratch", 190*gib, memattr.Latency, ini)
	if err != nil {
		log.Fatal(err)
	}
	buf, dec, err := sys.MemAlloc("graph-index", bufSize, memattr.Latency, ini)
	if err != nil {
		log.Fatal(err)
	}
	if dec.RankPosition == 0 {
		log.Fatal("expected the buffer to be stranded on a fallback target")
	}

	eng := sys.Engine(ini)
	// One phase runs before the scratch goes away.
	eng.Phase("chase-while-full", []memsim.Access{{Buffer: buf, RandomReads: chases, MLP: 2}})
	sys.Free(scratch)

	if migrate {
		cost, mdec, err := sys.Allocator.MigrateToBest(buf, memattr.Latency, ini)
		if err != nil {
			log.Fatal(err)
		}
		eng.AdvanceClock(cost)
		if phases == 1 {
			fmt.Printf("  (copy %s -> %s: %.2f s)\n", dec.Target.Subtype, mdec.Target.Subtype, cost)
		}
	}
	for i := 0; i < phases; i++ {
		eng.Phase("chase", []memsim.Access{{Buffer: buf, RandomReads: chases, MLP: 2}})
	}
	return eng.Elapsed()
}
