package hetmem

// The benchmark harness: one testing.B target per table and figure of
// the paper's evaluation, plus ablations for the design choices called
// out in DESIGN.md. Results are exported with b.ReportMetric so that
// `go test -bench=. -benchmem` prints the same series the paper
// reports (TEPS, GB/s, bound percentages) next to the harness cost.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"testing"

	"hetmem/internal/alloc"
	"hetmem/internal/bitmap"
	"hetmem/internal/core"
	"hetmem/internal/experiments"
	"hetmem/internal/graph500"
	"hetmem/internal/memattr"
	"hetmem/internal/memsim"
	"hetmem/internal/platform"
	"hetmem/internal/policy"
	"hetmem/internal/server"
	"hetmem/internal/stream"
)

const gib = uint64(1) << 30

// BenchmarkTable2a_Graph500Xeon regenerates Table IIa: Graph500 TEPS
// on the Xeon, DRAM vs NVDIMM, edge lists 2.15-34.36 GB.
func BenchmarkTable2a_Graph500Xeon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Table2aData()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range data {
				b.ReportMetric(c.TEPSe8["DRAM"], "DRAM-TEPSe8@"+gbLabel(c.GraphGB))
				b.ReportMetric(c.TEPSe8["NVDIMM"], "NVDIMM-TEPSe8@"+gbLabel(c.GraphGB))
			}
		}
	}
}

// BenchmarkTable2b_Graph500KNL regenerates Table IIb.
func BenchmarkTable2b_Graph500KNL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Table2bData()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range data {
				b.ReportMetric(c.TEPSe8["HBM"], "HBM-TEPSe8@"+gbLabel(c.GraphGB))
				b.ReportMetric(c.TEPSe8["DRAM"], "DRAM-TEPSe8@"+gbLabel(c.GraphGB))
			}
		}
	}
}

// BenchmarkTable3a_StreamXeon regenerates Table IIIa.
func BenchmarkTable3a_StreamXeon(b *testing.B) {
	benchStream(b, experiments.Table3aData)
}

// BenchmarkTable3b_StreamKNL regenerates Table IIIb.
func BenchmarkTable3b_StreamKNL(b *testing.B) {
	benchStream(b, experiments.Table3bData)
}

func benchStream(b *testing.B, data func() ([]experiments.StreamCell, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cells, err := data()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				if c.Failed {
					continue
				}
				b.ReportMetric(c.TriadGBs, c.Criterion+"-GBs@"+gbLabel(c.TotalGiB))
			}
		}
	}
}

// BenchmarkTable4_Profiles regenerates the Table IV summaries.
func BenchmarkTable4_Profiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4Data()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for name, s := range rows {
				b.ReportMetric(s.DRAMBoundPct, name+"-DRAMBound%")
				b.ReportMetric(s.PMemBoundPct, name+"-PMemBound%")
			}
		}
	}
}

// BenchmarkFig5_HMATDiscovery times the firmware discovery pipeline
// that produces the Figure 5 report (build table, decode, apply).
func BenchmarkFig5_HMATDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.NewSystem("xeon-snc2", core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7_HotObjects times the per-object analysis behind
// Figure 7.
func BenchmarkFig7_HotObjects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPortability regenerates the Section VI-A matrix.
func BenchmarkPortability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PortabilityData(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscovery_BenchmarkPath times the full measurement campaign
// on the HMAT-less KNL (Table I's external-source path).
func BenchmarkDiscovery_BenchmarkPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.NewSystem("knl-snc4-flat", core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblation_DirectionOptimizingBFS compares the real BFS with
// and without Beamer-style direction optimization (edges scanned and
// wall time of the actual algorithm, not the simulator).
func BenchmarkAblation_DirectionOptimizingBFS(b *testing.B) {
	edges := graph500.GenerateEdges(16, 16, 7)
	g := graph500.BuildCSR(edges, 1<<16)
	root := edges[0].U
	for _, do := range []struct {
		name string
		opt  bool
	}{{"topdown", false}, {"directionopt", true}} {
		b.Run(do.name, func(b *testing.B) {
			var scanned int64
			for i := 0; i < b.N; i++ {
				_, st := graph500.BFS(g, root, graph500.BFSOptions{DirectionOptimizing: do.opt})
				scanned = st.EdgesScanned
			}
			b.ReportMetric(float64(scanned), "edges-scanned")
		})
	}
}

// BenchmarkAblation_MemorySideCache measures the same streamed kernel
// on KNL Cache mode (MCDRAM as memory-side cache) with a fitting and a
// spilling working set — the paper's Cache-vs-Flat trade-off.
func BenchmarkAblation_MemorySideCache(b *testing.B) {
	for _, ws := range []struct {
		name string
		size uint64
	}{{"fits-cache", 8 * gib}, {"spills", 64 * gib}} {
		b.Run(ws.name, func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				p, err := platform.Get("knl-quadrant-cache")
				if err != nil {
					b.Fatal(err)
				}
				m, err := p.NewMachine()
				if err != nil {
					b.Fatal(err)
				}
				buf, err := m.Alloc("a", ws.size, m.NodeByOS(0))
				if err != nil {
					b.Fatal(err)
				}
				e := memsim.NewEngine(m, bitmap.NewFromRange(0, 63))
				res := e.Phase("stream", []memsim.Access{{Buffer: buf, ReadBytes: ws.size * 2}})
				bw = float64(ws.size*2) / float64(gib) / res.Seconds
			}
			b.ReportMetric(bw, "GBs")
		})
	}
}

// BenchmarkAblation_NVDIMMWriteBuffer isolates the Optane buffering
// model: triad bandwidth below and above the device buffer.
func BenchmarkAblation_NVDIMMWriteBuffer(b *testing.B) {
	for _, ws := range []struct {
		name  string
		total uint64
	}{{"buffered-20GiB", 20 * gib}, {"sustained-60GiB", 60 * gib}} {
		b.Run(ws.name, func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				p, err := platform.Get("xeon")
				if err != nil {
					b.Fatal(err)
				}
				m, err := p.NewMachine()
				if err != nil {
					b.Fatal(err)
				}
				ar, err := stream.AllocArrays(func(name string, size uint64) (*memsim.Buffer, error) {
					return m.Alloc(name, size, m.NodeByOS(2))
				}, ws.total/3/stream.ElemBytes)
				if err != nil {
					b.Fatal(err)
				}
				e := memsim.NewEngine(m, bitmap.NewFromRange(0, 19))
				bw = stream.Run(e, ar, 2).TriadBW
			}
			b.ReportMetric(bw, "triad-GBs")
		})
	}
}

// BenchmarkAblation_FCFSvsPriority measures the end-to-end kernel time
// that results from each planning policy under capacity pressure.
func BenchmarkAblation_FCFSvsPriority(b *testing.B) {
	reqs := []alloc.Request{
		{Name: "scratch", Size: 3 * gib, Attr: memattr.Bandwidth, Priority: 1},
		{Name: "critical", Size: 3 * gib, Attr: memattr.Bandwidth, Priority: 10},
	}
	for _, mode := range []string{"fcfs", "priority"} {
		b.Run(mode, func(b *testing.B) {
			var seconds float64
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem("knl-snc4-flat", core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				ini := sys.InitiatorForGroup(0)
				var pls []alloc.Placement
				if mode == "fcfs" {
					pls = sys.Allocator.PlanFCFS(reqs, ini)
				} else {
					pls = sys.Allocator.PlanPriority(reqs, ini)
				}
				e := sys.Engine(ini)
				// The critical buffer is streamed 100x more than the
				// scratch: its placement dominates.
				res := e.Phase("kernel", []memsim.Access{
					{Buffer: pls[1].Buffer, ReadBytes: 300 * gib},
					{Buffer: pls[0].Buffer, ReadBytes: 3 * gib},
				})
				seconds = res.Seconds
			}
			b.ReportMetric(seconds, "kernel-s")
		})
	}
}

// BenchmarkServerAlloc measures placement-daemon service throughput:
// parallel alloc/free round-trips (HTTP, JSON, lease table, sharded
// capacity accounting) against an in-process hetmemd. This is the
// series that tracks the service layer's perf trajectory.
func BenchmarkServerAlloc(b *testing.B) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(server.New(sys).Handler())
	defer ts.Close()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		// Benchmark the request path, not the retry machinery.
		cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.NoRetry))
		for pb.Next() {
			resp, err := cl.Alloc(ctx, server.AllocRequest{
				Name: "bench", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19",
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := cl.Free(ctx, resp.Lease); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	// Two HTTP requests per iteration.
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "req/s")
}

// benchClients is the concurrency the journal benchmarks model: the
// PR-4 acceptance criterion is measured at 32 concurrent clients,
// where group commit amortizes its linger across a full batch. (At 1
// client the linger is pure overhead — group commit trades a little
// latency for a lot of throughput.)
const benchClients = 32

// benchServerAllocConfig runs the BenchmarkServerAlloc loop against a
// daemon with the given durability configuration, so the journal
// strategies can be compared on the same harness.
func benchServerAllocConfig(b *testing.B, cfg server.Config) {
	b.Helper()
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.NewWithConfig(sys, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	b.SetParallelism((benchClients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.NoRetry))
		for pb.Next() {
			resp, err := cl.Alloc(ctx, server.AllocRequest{
				Name: "bench", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19",
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := cl.Free(ctx, resp.Lease); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkServerAllocJournalSyncEach is the durable pre-fast-path
// daemon: one fsync per journaled record, candidate cache off. This is
// the baseline the PR-4 speedup is measured against.
func BenchmarkServerAllocJournalSyncEach(b *testing.B) {
	benchServerAllocConfig(b, server.Config{
		JournalPath:           b.TempDir() + "/bench.wal",
		SyncEveryAppend:       true,
		DisableCandidateCache: true,
	})
}

// BenchmarkServerAllocJournalGroupCommit is the fast path: concurrent
// appends share one fsync and placements hit the ranked-candidate
// cache, with the same durability guarantee as SyncEveryAppend.
func BenchmarkServerAllocJournalGroupCommit(b *testing.B) {
	benchServerAllocConfig(b, server.Config{
		JournalPath: b.TempDir() + "/bench.wal",
		GroupCommit: true,
	})
}

// BenchmarkServerAllocBatch drives the same load through
// /v1/alloc/batch: 16 placements per round trip, one journal batch
// each.
func BenchmarkServerAllocBatch(b *testing.B) {
	const perBatch = 16
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.NewWithConfig(sys, server.Config{
		JournalPath: b.TempDir() + "/bench.wal",
		GroupCommit: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqs := make([]server.AllocRequest, perBatch)
	for i := range reqs {
		reqs[i] = server.AllocRequest{
			Name: "bench", Size: 1 << 20, Attr: "Bandwidth", Initiator: "0-19",
		}
	}
	b.SetParallelism((benchClients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		cl := server.NewClient(ts.URL, server.WithRetryPolicy(server.NoRetry))
		for pb.Next() {
			resp, err := cl.AllocBatch(ctx, reqs)
			if err != nil {
				b.Fatal(err)
			}
			for _, it := range resp.Results {
				if it.Error != nil {
					b.Fatalf("batch item failed: %s", it.Error.Message)
				}
				if err := cl.Free(ctx, it.Alloc.Lease); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.StopTimer()
	// perBatch allocations per iteration.
	b.ReportMetric(float64(perBatch*b.N)/b.Elapsed().Seconds(), "allocs/s")
}

// BenchmarkAblation_AllocatorOverhead measures the cost of one
// attribute-driven allocation decision (rank + place + free).
func BenchmarkAblation_AllocatorOverhead(b *testing.B) {
	sys, err := core.NewSystem("xeon", core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ini := sys.InitiatorForPackage(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _, err := sys.MemAlloc("b", 1<<20, memattr.Latency, ini)
		if err != nil {
			b.Fatal(err)
		}
		sys.Free(buf)
	}
}

func gbLabel(gb float64) string {
	switch {
	case gb < 3:
		return "S"
	case gb < 6:
		return "M"
	case gb < 12:
		return "L"
	case gb < 24:
		return "XL"
	case gb < 100:
		return "XXL"
	default:
		return "XXXL"
	}
}

// BenchmarkAblation_InterleaveAggregation measures the bandwidth
// aggregation of the OS interleave policy across DRAM+NVDIMM versus a
// single-node binding — and its latency penalty for irregular access.
func BenchmarkAblation_InterleaveAggregation(b *testing.B) {
	for _, mode := range []string{"dram-only", "interleave"} {
		b.Run(mode, func(b *testing.B) {
			var bw, lat float64
			for i := 0; i < b.N; i++ {
				p, err := platform.Get("xeon")
				if err != nil {
					b.Fatal(err)
				}
				m, err := p.NewMachine()
				if err != nil {
					b.Fatal(err)
				}
				ini := bitmap.NewFromRange(0, 19)
				var pol policy.Policy
				if mode == "dram-only" {
					pol = policy.Policy{Mode: policy.Bind, Nodes: []int{0}}
				} else {
					pol = policy.Policy{Mode: policy.Interleave, Nodes: []int{0, 2}}
				}
				buf, err := pol.Alloc(m, ini, "a", 40*gib)
				if err != nil {
					b.Fatal(err)
				}
				e := memsim.NewEngine(m, ini)
				res := e.Phase("stream", []memsim.Access{{Buffer: buf, ReadBytes: 80 * gib}})
				bw = res.AchievedBW
				e2 := memsim.NewEngine(m, ini)
				r2 := e2.Phase("rand", []memsim.Access{{Buffer: buf, RandomReads: 100_000_000, MLP: 8}})
				lat = r2.Seconds
			}
			b.ReportMetric(bw, "stream-GBs")
			b.ReportMetric(lat, "random-s")
		})
	}
}

// BenchmarkScaling_DistributedBFS regenerates the distributed
// Graph500 extension: TEPS across 1/2/4 KNL clusters.
func BenchmarkScaling_DistributedBFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ScalingData()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.TEPSe8, fmt.Sprintf("TEPSe8@%dranks", r.Ranks))
			}
		}
	}
}

// BenchmarkGUPS regenerates the GUPS extension table.
func BenchmarkGUPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.GUPSData()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, c := range cells {
				b.ReportMetric(c.GUPS, c.Machine+"-"+c.Kind+"-GUPS")
			}
		}
	}
}
